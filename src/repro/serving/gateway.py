"""ServingGateway: concurrent traffic over N replica QAService shards.

The single-process :class:`~repro.serving.service.QAService` serves one
caller at a time per pool; the gateway turns it into a serving
*platform* (ROADMAP open item 1): a thread- and asyncio-friendly
front-end that accepts concurrent ``ask``/``ask_many`` traffic, hashes
every request onto one of N replica shards, coalesces queued requests
into per-shard micro-batches, and sheds deterministically when a shard
queue hits its depth bound.

Architecture — four moving parts:

* **Shards.**  N full :class:`QAService` replicas, each with its own
  persistent :class:`~repro.runtime.TaskRunner` pool and its own
  bounded :class:`~repro.serving.ingest.PageCache`, all warm-started
  from **one shared** :class:`~repro.webtree.store.CorpusStoreReader`
  (memmapped planes are read-only; N shards share the bytes through
  the OS page cache).
* **Content-affinity hashing.**  A request's shard is a pure function
  of its page fingerprint (:func:`~repro.serving.ingest.page_fingerprint`
  over ``(url, html)``) — the same page always lands on the same shard,
  so the N per-shard caches *partition* the corpus instead of
  duplicating it.  That is where sharding pays even on one core: a
  working set larger than one replica's cache thrashes a single pool
  (every request pays a cold parse), while the same traffic hashed
  across N shards stays cache-resident.  On multi-core machines the
  per-shard pools add replica parallelism on top.
* **Coalescing queues.**  One :class:`~repro.runtime.CoalescingQueue`
  + dispatcher thread per shard.  Concurrent front-end submitters
  enqueue; the dispatcher takes size- or age-triggered micro-batches
  and drives them through ``shard.ask_many(strict=False)`` — the same
  five-stage pipeline, retry policy, deadlines and circuit breakers as
  direct service calls.
* **Backpressure ladder.**  Overload is refused in order, outermost
  first: (1) the shard queue at ``queue_depth`` sheds instantly with
  :class:`~repro.core.errors.RejectedError` (``reason="overload"``,
  stable, arrival-order-deterministic); (2) whatever reaches a shard
  still passes its ``max_inflight`` admission bound; (3) per-route
  circuit breakers shed routes that keep failing.  Nothing blocks, and
  nothing is dropped silently — every refused request gets a
  structured rejection.

Control-plane operations fan out: :meth:`register` hot-swaps a route
on every shard under each shard's own epoch/refcount drain protocol,
:meth:`rollback` restores the previous version everywhere, and a
:class:`~repro.serving.live.LiveCorpus` may be constructed **directly
over the gateway** — it duck-types as a service (shared ``store``, a
fan-out cache facade, ``register``/``route_version``/``tool``/``stats``)
so ``feed()`` publishes one store generation, invalidates every shard's
cache exactly, refits once, and swaps all shards to the same candidate.

The differential bar is absolute and pinned by
``tests/serving/test_gateway.py``: for any shard count, concurrency
level and flush policy, answers are bit-identical to sequential
``tool.predict`` over the same requests.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field

from ..core.errors import DeadlineExceeded, IngestError, RejectedError
from ..retrieval.router import (
    DEFAULT_TOP_K,
    CorpusAnswer,
    build_answer,
    cut_top_k,
    query_terms,
    scan_scores,
)
from ..runtime.batchq import CoalescingQueue, QueueClosed
from .faults import FaultInjector, FaultPlan
from .ingest import DEFAULT_LIMITS, ServingLimits, page_fingerprint
from .service import QAService, ServingRequest, ServingResult


@dataclass
class GatewayStats:
    """Front-end counters: what entered, what was refused, how it batched.

    Per-shard serving detail (stage seconds, retries, failures) lives
    on each shard's own :class:`~repro.serving.service.ServiceStats`;
    these counters cover the gateway layer itself.
    """

    submitted: int = 0
    #: Requests refused at the queue bound (``RejectedError("overload")``).
    shed: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    hot_swaps: int = 0
    rollbacks: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_submit(self, count: int = 1) -> None:
        with self._lock:
            self.submitted += count

    def record_shed(self, count: int = 1) -> None:
        with self._lock:
            self.shed += count

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.max_batch_size = max(self.max_batch_size, size)

    def record_swap(self) -> None:
        with self._lock:
            self.hot_swaps += 1

    def record_rollback(self) -> None:
        with self._lock:
            self.rollbacks += 1

    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate(), 4),
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size(), 2),
            "max_batch_size": self.max_batch_size,
            "hot_swaps": self.hot_swaps,
            "rollbacks": self.rollbacks,
        }


class _FanoutCache:
    """The gateway's cache facade for :class:`LiveCorpus`.

    ``invalidate`` must reach *every* shard (a page may have been
    cached anywhere before affinity settled, and exactness is the
    contract); ``put`` warms only the page's home shard — priming any
    other cache would violate the partitioning that makes sharding pay.
    """

    def __init__(self, gateway: "ServingGateway") -> None:
        self._gateway = gateway

    def invalidate(self, fingerprint: str) -> bool:
        dropped = False
        for shard in self._gateway._shards:
            dropped = shard.cache.invalidate(fingerprint) or dropped
        return dropped

    def put(self, fingerprint: str, page, degraded: bool = False) -> None:
        home = self._gateway.shard_of_fingerprint(fingerprint)
        self._gateway._shards[home].cache.put(fingerprint, page, degraded)


class _Pending:
    """One queued request: the work plus the future its caller awaits."""

    __slots__ = ("request", "future")

    def __init__(self, request: ServingRequest, future: "Future") -> None:
        self.request = request
        self.future = future


class ServingGateway:
    """N replica :class:`QAService` shards behind one concurrent front-end.

    Parameters
    ----------
    shards:
        Replica count.  Each shard owns a pool and a page cache.
    store:
        A corpus store path or opened
        :class:`~repro.webtree.store.CorpusStoreReader`, shared by all
        shards (opened once).
    max_batch / flush_delay_seconds:
        Micro-batch flush policy per shard queue: flush at ``max_batch``
        waiting requests or when the oldest has aged
        ``flush_delay_seconds``, whichever first.
    queue_depth:
        Per-shard bound on *waiting* requests (``None`` = unbounded).
        Overflow resolves instantly to a
        :class:`~repro.core.errors.RejectedError` (``"overload"``)
        result — the outermost rung of the backpressure ladder.
    jobs / backend / page_cache_size / retry_policy / deadline_seconds /
    max_inflight / circuit_threshold / circuit_reset_seconds / limits /
    fault_injector / clock:
        Forwarded to every shard's :class:`QAService` constructor.
    """

    def __init__(
        self,
        shards: int = 2,
        store: "object | str | None" = None,
        max_batch: int = 32,
        flush_delay_seconds: float = 0.002,
        queue_depth: "int | None" = None,
        jobs: int = 1,
        backend: str = "thread",
        page_cache_size: int = 256,
        limits: "ServingLimits | None" = DEFAULT_LIMITS,
        fault_injector: "FaultInjector | FaultPlan | None" = None,
        **service_kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        import os

        if isinstance(store, (str, os.PathLike)):
            from ..webtree.store import CorpusStoreReader

            store = CorpusStoreReader(store)
        self.store = store
        self.shards = shards
        self.max_batch = max_batch
        self.queue_depth = queue_depth
        self.limits = limits
        if isinstance(fault_injector, FaultPlan):
            fault_injector = FaultInjector(fault_injector)
        self._injector = fault_injector
        self.stats = GatewayStats()
        self.cache = _FanoutCache(self)
        self._live: "object | None" = None
        self._routes: "set[str]" = set()
        self._routes_lock = threading.Lock()
        self._closed = False
        self._shards = [
            QAService(
                jobs=jobs,
                backend=backend,
                max_batch=max_batch,
                page_cache_size=page_cache_size,
                limits=limits,
                fault_injector=fault_injector,
                store=store,
                **service_kwargs,
            )
            for _ in range(shards)
        ]
        self._queues = [
            CoalescingQueue(
                max_batch=max_batch,
                max_delay_seconds=flush_delay_seconds,
                max_depth=queue_depth,
            )
            for _ in range(shards)
        ]
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(index,),
                name=f"gateway-shard-{index}",
                daemon=True,
            )
            for index in range(shards)
        ]
        for thread in self._dispatchers:
            thread.start()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain the queues, stop the dispatchers, close every shard."""
        if self._closed:
            return
        self._closed = True
        for queue in self._queues:
            queue.close()
        for thread in self._dispatchers:
            thread.join()
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- sharding ------------------------------------------------------------

    def shard_of_fingerprint(self, fingerprint: str) -> int:
        """Shard index for a page fingerprint (hex sha256 prefix mod N)."""
        return int(fingerprint[:16], 16) % self.shards

    def shard_of(self, request: ServingRequest) -> int:
        """Content-affinity shard for one request.

        Raw-HTML requests hash on the exact cache key serving will use
        (:func:`page_fingerprint` over ``(url, html)``), so one page
        always warms exactly one shard cache.  Pre-parsed requests
        carry no raw bytes; they hash on their url namespace, which
        keeps per-page affinity without re-serializing the tree.
        """
        if request.html is not None:
            key = page_fingerprint(request.html, request.url)
        else:
            url = request.url or (
                request.page.url if request.page is not None else ""
            )
            key = page_fingerprint("", url)
        return self.shard_of_fingerprint(key)

    def shard(self, index: int) -> QAService:
        """Direct access to one replica (tests, operators)."""
        return self._shards[index]

    # -- control plane (fan-out) ---------------------------------------------

    def register(
        self,
        route: str,
        source: "object",
        version: "str | None" = None,
    ):
        """Bind ``route`` on every shard; re-binding hot-swaps everywhere.

        The artifact is loaded (or the tool validated) exactly once, on
        shard 0; the remaining shards register the same tool object
        under the same version id, each swapping atomically under its
        own epoch/refcount protocol.  Tools are stateless at serving
        time, so sharing one instance across shard pools is the same
        sharing the shard's own worker threads already do.
        """
        swap = route in self._routes
        tool = self._shards[0].register(route, source, version=version)
        if version is None:
            version = self._shards[0].route_version(route)
        for shard in self._shards[1:]:
            shard.register(route, tool, version=version)
        with self._routes_lock:
            self._routes.add(route)
        if swap:
            self.stats.record_swap()
        return tool

    def unregister(self, route: str) -> None:
        for shard in self._shards:
            shard.unregister(route)
        with self._routes_lock:
            self._routes.discard(route)

    def routes(self) -> "tuple[str, ...]":
        return self._shards[0].routes()

    def tool(self, route: str):
        return self._shards[0].tool(route)

    def route_version(self, route: str) -> str:
        return self._shards[0].route_version(route)

    def route_versions(self, route: str) -> "list[str]":
        """The version each shard currently serves (all equal when quiet)."""
        return [shard.route_version(route) for shard in self._shards]

    def route_drained(self, route: str) -> bool:
        """No retired version still serves a call, on *any* shard."""
        return all(shard.route_drained(route) for shard in self._shards)

    def rollback(self, route: str) -> str:
        """Restore ``route``'s previous version on every shard."""
        version = ""
        for shard in self._shards:
            version = shard.rollback(route)
        self.stats.record_rollback()
        return version

    def inject_faults(
        self, injector: "FaultInjector | FaultPlan | None"
    ) -> None:
        if isinstance(injector, FaultPlan):
            injector = FaultInjector(injector)
        self._injector = injector
        for shard in self._shards:
            shard.inject_faults(injector)

    # -- live corpus ---------------------------------------------------------

    def attach_live(self, live: "object") -> None:
        """Attach a :class:`LiveCorpus` built over this gateway."""
        self._live = live

    @property
    def live(self) -> "object | None":
        return self._live

    def feed(self, html: str, url: str = "", **kwargs):
        """Feed one changed document to the attached live corpus."""
        if self._live is None:
            raise ValueError(
                "no live corpus attached; construct "
                "repro.serving.live.LiveCorpus(gateway, ...) first"
            )
        return self._live.feed(html, url=url, **kwargs)

    # -- operator controls ---------------------------------------------------

    def pause_shard(self, index: int) -> None:
        """Quiesce one shard: its queue accepts but stops dispatching."""
        self._queues[index].pause()

    def resume_shard(self, index: int) -> None:
        self._queues[index].resume()

    def queue_depths(self) -> "list[int]":
        return [queue.depth() for queue in self._queues]

    def health(self) -> dict:
        """The operator snapshot: backpressure before it sheds.

        Top level: the gateway's own counters plus the per-shard
        queue/in-flight/breaker/version summary the satellite asks for;
        ``shards`` carries each replica's full
        :meth:`QAService.health` for drill-down.
        """
        shard_health = [shard.health() for shard in self._shards]
        routes = self.routes()
        total_requests = sum(h["stats"]["requests"] for h in shard_health)
        starts = [
            shard.stats.span_started
            for shard in self._shards
            if shard.stats.span_started is not None
        ]
        ends = [
            shard.stats.span_ended
            for shard in self._shards
            if shard.stats.span_ended is not None
        ]
        span = (max(ends) - min(starts)) if starts and ends else 0.0
        index = self._shards[0].corpus_index(required=False)
        return {
            "shards": self.shards,
            "closed": self._closed,
            "queue_depths": self.queue_depths(),
            "queue_depth_bound": self.queue_depth,
            # Live-corpus churn observability: exact invalidations per
            # shard, plus the published store/index generations.
            "invalidations": [
                h["ingest"]["invalidations"] for h in shard_health
            ],
            "store_generation": (
                self.store.generation if self.store is not None else None
            ),
            "index_generation": (
                index.generation if index is not None else None
            ),
            "inflight": [h["inflight"] for h in shard_health],
            "pools_broken": [h["pools_broken"] for h in shard_health],
            "dispatchers_alive": [t.is_alive() for t in self._dispatchers],
            "circuits": {
                route: [h["circuits"].get(route) for h in shard_health]
                for route in routes
            },
            "versions": {
                route: self.route_versions(route) for route in routes
            },
            "requests": total_requests,
            "span_seconds": span,
            "throughput_pages_per_s": round(
                total_requests / span if span > 0 else 0.0, 2
            ),
            "stats": self.stats.as_dict(),
            "per_shard": shard_health,
        }

    # -- the serving path ----------------------------------------------------

    def submit(self, request: "ServingRequest | tuple") -> "Future":
        """Enqueue one request; the future resolves to a ServingResult.

        Never blocks and never raises for data-plane conditions: a
        request refused at the queue bound resolves *immediately* to a
        result carrying ``RejectedError("overload")``, exactly like an
        admission-bound rejection one rung further in.
        """
        request = self._normalize(request)
        return self._submit_to(self.shard_of(request), request)

    def _submit_to(self, index: int, request: ServingRequest) -> "Future":
        """Enqueue on an explicit shard (corpus routing picks by
        candidate-page fingerprint, where :meth:`shard_of` cannot —
        pre-parsed store pages carry no raw bytes to hash)."""
        future: "Future" = Future()
        self.stats.record_submit()
        if self._closed:
            future.set_result(
                ServingResult(
                    route=request.route,
                    error=RejectedError(
                        "gateway is closed", reason="closed", route=request.route
                    ),
                )
            )
            return future
        try:
            accepted = self._queues[index].put(_Pending(request, future))
        except QueueClosed:
            accepted = False
        if not accepted:
            self.stats.record_shed()
            future.set_result(
                ServingResult(
                    route=request.route,
                    error=RejectedError(
                        f"request shed: shard {index} queue at depth bound "
                        f"{self.queue_depth}",
                        reason="overload",
                        route=request.route,
                    ),
                )
            )
        return future

    def ask(
        self,
        route: str,
        html: "str | None" = None,
        page=None,
        url: str = "",
        timeout: "float | None" = None,
    ) -> "tuple[str, ...]":
        """Answer one request synchronously through the sharded path."""
        (answer,) = self.ask_many(
            [ServingRequest(route=route, html=html, page=page, url=url)],
            timeout=timeout,
        )
        return answer

    def ask_many(
        self,
        requests: "list[ServingRequest | tuple]",
        *,
        strict: bool = True,
        timeout: "float | None" = None,
    ):
        """Answer a bulk of requests; results align with ``requests``.

        Requests fan out to their affinity shards and coalesce with any
        other traffic in flight; this call gathers the futures back in
        request order.  ``strict=True`` (default) raises the
        lowest-index error — deterministic regardless of shard timing —
        and returns plain answers; ``strict=False`` returns one
        :class:`ServingResult` per request.
        """
        futures = [self.submit(request) for request in requests]
        results = self._gather(futures, timeout)
        if strict:
            for result in results:
                if result.error is not None:
                    raise result.error
            return [result.answer for result in results]
        return results

    def ask_corpus(
        self,
        route: str,
        question: "str | None" = None,
        *,
        top_k: "int | None" = DEFAULT_TOP_K,
        exhaustive: bool = False,
        timeout: "float | None" = None,
    ) -> CorpusAnswer:
        """Corpus-scale answering through the sharded data plane.

        Scoring runs once at the front (the memmap index is shared, like
        the store); each candidate page then fans out through
        :meth:`_submit_to` on its *content-affinity* shard — the shard
        whose cache owns that fingerprint — so routed fan-outs coalesce
        with ordinary page traffic and the per-shard cache partitioning
        is preserved.  The consensus tail is the service's own
        (:func:`~repro.retrieval.router.build_answer`), so a gateway
        answer is bit-identical to a single-service
        :meth:`~repro.serving.service.QAService.ask_corpus` over the
        same store, routed or exhaustive alike.
        """
        if self.store is None:
            raise IngestError(
                "ask_corpus needs a corpus store; construct the gateway "
                "with store=..."
            )
        front = self._shards[0]
        tool = self.tool(route)
        if question is None:
            question = tool._question
        query = query_terms(question, tool._keywords)
        if exhaustive:
            scored = scan_scores(self.store, front._corpus_scan_idf(), query)
        else:
            index = front.corpus_index()
            index.ensure_fresh(self.store)
            scored = index.score(query)
        candidates = cut_top_k(scored, top_k)
        answers: "list[tuple[str, ...] | None]" = []
        if candidates:
            futures = [
                self._submit_to(
                    self.shard_of_fingerprint(fingerprint),
                    ServingRequest(
                        route=route, page=self.store.load(fingerprint)[0]
                    ),
                )
                for fingerprint, _ in candidates
            ]
            results = self._gather(futures, timeout)
            answers = [
                result.answer if result.ok else None for result in results
            ]
        return build_answer(
            route,
            question,
            candidates,
            answers,
            top_k=top_k,
            routed=not exhaustive,
            url_of=lambda fp: (self.store.entry(fp) or {}).get("url") or None,
        )

    # -- asyncio front-end ---------------------------------------------------

    async def ask_many_async(
        self,
        requests: "list[ServingRequest | tuple]",
        *,
        strict: bool = True,
    ):
        """Awaitable :meth:`ask_many`: the event loop never blocks.

        Each request's ``concurrent.futures.Future`` is wrapped for the
        running loop, so thousands of coroutines can await answers
        while the shard dispatchers batch underneath them.
        """
        import asyncio

        futures = [
            asyncio.wrap_future(self.submit(request)) for request in requests
        ]
        results = list(await asyncio.gather(*futures))
        if strict:
            for result in results:
                if result.error is not None:
                    raise result.error
            return [result.answer for result in results]
        return results

    async def ask_async(
        self,
        route: str,
        html: "str | None" = None,
        page=None,
        url: str = "",
    ) -> "tuple[str, ...]":
        (answer,) = await self.ask_many_async(
            [ServingRequest(route=route, html=html, page=page, url=url)]
        )
        return answer

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _normalize(request: "ServingRequest | tuple") -> ServingRequest:
        if isinstance(request, ServingRequest):
            return request
        return ServingRequest(
            route=request[0],
            html=request[1],
            url=request[2] if len(request) > 2 else "",
        )

    def _gather(
        self, futures: "list[Future]", timeout: "float | None"
    ) -> "list[ServingResult]":
        deadline = time.monotonic() + timeout if timeout is not None else None
        results: "list[ServingResult]" = []
        for future in futures:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                results.append(future.result(timeout=remaining))
            except FuturesTimeout:
                raise DeadlineExceeded(
                    f"gateway timeout of {timeout:.3f}s exceeded awaiting "
                    f"request {len(results)}",
                    deadline_seconds=timeout or 0.0,
                ) from None
        return results

    def _dispatch_loop(self, index: int) -> None:
        """One shard's consumer: take micro-batches, serve, resolve."""
        shard = self._shards[index]
        queue = self._queues[index]
        while True:
            batch: "list[_Pending]" = queue.take()
            if not batch:
                # take() returns empty only once closed and drained.
                return
            self.stats.record_batch(len(batch))
            try:
                results = shard.ask_many(
                    [pending.request for pending in batch], strict=False
                )
            except BaseException as error:  # noqa: BLE001 — isolate the batch
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for pending, result in zip(batch, results):
                pending.future.set_result(result)
