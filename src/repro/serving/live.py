"""Live corpus updates: feed changed pages, refit warm, hot-swap safely.

A serving deployment outlives its corpus: pages change, pages vanish.
This module closes the loop between the generational
:mod:`~repro.webtree.store` and the versioned routing table of
:class:`~repro.serving.service.QAService`:

1. **Publish.**  ``feed(html, url)`` re-ingests the changed raw HTML
   through the exact pipeline serving uses, streams it into a new store
   generation via :class:`~repro.webtree.store.CorpusStoreUpdater`
   (segment rename, then manifest rename — crash-safe at every byte
   boundary), and reloads the service's reader.  A crash anywhere in
   this step leaves the previous generation fully openable and the
   in-memory state untouched: nothing downstream of the publish runs.
2. **Invalidate.**  Exactly the superseded fingerprint is dropped from
   the :class:`~repro.serving.ingest.PageCache` (cascading to its
   :class:`~repro.webtree.textplane.TextPlane` and per-page memo
   tables), counted in ``IngestStats.invalidations``.  Untouched pages
   keep their warm entries — invalidation is exact, not a flush.
3. **Refit.**  Every tracked route whose labeled or unlabeled pages
   include the changed URL is refitted *warm* on its live
   :class:`~repro.synthesis.session.SynthesisSession` — the session
   keeps its fingerprint-keyed block cache and its persistent
   ``TaskRunner`` pool, so only blocks whose content actually changed
   are re-solved.  The refit builds a **candidate** tool; the serving
   tool keeps answering on the old version throughout.
4. **Hot-swap or roll back.**  A candidate that fit cleanly, completed
   within its synthesis deadline, and did not regress held-out F1 is
   swapped in under the service's epoch/refcount protocol (in-flight
   queries drain on the version they pinned; zero drops).  Otherwise
   the route *keeps the old version* — rollback here is abstention,
   which is trivially crash-safe: there is no window where a bad
   candidate serves.  Explicit post-swap :meth:`QAService.rollback`
   remains available for operator-driven reverts.

The differential bar (pinned by ``tests/serving/test_live.py``): after
any sequence of feeds and removals, answers are bit-identical to a
fresh full store rebuild plus a fresh fit — generations, invalidation
and warm refit are *transparent* optimizations.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace

from ..core.errors import IngestError
from ..core.webqa import WebQA
from ..metrics.scores import score_examples
from ..synthesis.examples import LabeledExample
from ..synthesis.session import SynthesisSession
from ..webtree.node import WebPage
from ..webtree.store import CorpusStoreUpdater
from .ingest import ingest_page, page_fingerprint


@dataclass(frozen=True)
class RouteSwap:
    """What one feed did to one tracked route."""

    route: str
    #: True when the candidate was published; False means the route
    #: kept its previous version (see ``reason``).
    swapped: bool
    #: Version id now serving (the candidate's on swap, the old one on
    #: rollback).
    version: str
    previous_version: str
    #: Why the candidate was rejected: "" (swapped), "refit-error",
    #: "refit-deadline", or "holdout-regression".
    reason: str = ""
    refit_seconds: float = 0.0
    #: Candidate's held-out F1 (NaN-free: -1.0 when no holdout given).
    holdout_f1: float = -1.0


@dataclass(frozen=True)
class FeedReport:
    """Everything one ``feed``/``remove`` call did, for tests and ops."""

    url: str
    fingerprint: str
    previous_fingerprint: str
    #: Store generation now published (-1 when no store is attached).
    generation: int
    #: Whether a cache entry was dropped by exact invalidation.
    invalidated: bool
    #: True when the fed bytes fingerprint-matched the live page and
    #: the feed was a no-op end to end.
    unchanged: bool
    swaps: "tuple[RouteSwap, ...]" = ()
    #: Routes whose refit was dispatched to the background
    #: (``wait=False``); their swaps surface via :meth:`LiveCorpus.drain`.
    pending_routes: "tuple[str, ...]" = ()


class _TrackedRoute:
    """Mutable refit state for one route: session, pages, holdout."""

    __slots__ = (
        "route", "session", "unlabeled", "holdout",
        "ensemble_size", "selection", "seed", "f1_tolerance",
    )

    def __init__(
        self,
        route: str,
        session: SynthesisSession,
        unlabeled: "list[WebPage]",
        holdout: "list[LabeledExample]",
        ensemble_size: int,
        selection: str,
        seed: int,
        f1_tolerance: float,
    ) -> None:
        self.route = route
        self.session = session
        self.unlabeled = unlabeled
        self.holdout = holdout
        self.ensemble_size = ensemble_size
        self.selection = selection
        self.seed = seed
        self.f1_tolerance = f1_tolerance

    def touches(self, url: str) -> bool:
        """Whether this route's task references ``url`` at all."""
        return (
            any(page.url == url for page in self.unlabeled)
            or any(ex.page.url == url for ex in self.session.examples)
            or any(ex.page.url == url for ex in self.holdout)
        )


class LiveCorpus:
    """The feed API: corpus updates in, verified hot-swaps out.

    Construct over a running :class:`~repro.serving.service.QAService`
    (the instance attaches itself, enabling ``service.feed(...)``) and
    optionally a store path; then :meth:`track` the routes whose tasks
    should refit when their pages change.

    Thread-safety: feeds are serialized by an internal lock (the store
    updater is single-writer by design); queries never block on a feed
    — the service's routing table swaps atomically under its own locks.
    ``wait=False`` moves the refit+swap stage to a background thread;
    :meth:`drain` joins all pending refits and returns their swaps.
    """

    def __init__(
        self,
        service: "object",
        store_path: "str | None" = None,
        injector: "object | None" = None,
    ) -> None:
        self.service = service
        store = getattr(service, "store", None)
        self.store_path = store_path or (store.path if store is not None else None)
        self._injector = (
            injector if injector is not None
            else getattr(service, "_injector", None)
        )
        self._lock = threading.RLock()
        self._routes: "dict[str, _TrackedRoute]" = {}
        #: url → live fingerprint, seeded from the store manifest so a
        #: fresh LiveCorpus over an existing store supersedes correctly.
        self._urls: "dict[str, str]" = {}
        if store is not None:
            for fingerprint in list(store.fingerprints()):
                entry = store.entry(fingerprint)
                if entry is not None and entry.get("url"):
                    self._urls[entry["url"]] = fingerprint
        #: Monotonic feed counter — the index namespace of the
        #: update-path faults in :class:`~repro.serving.faults.FaultPlan`.
        self._feeds = 0
        self._pending: "list[threading.Thread]" = []
        self._drained_swaps: "list[RouteSwap]" = []
        service.attach_live(self)

    # -- route tracking ------------------------------------------------------

    def track(
        self,
        route: str,
        session: SynthesisSession,
        unlabeled: "list[WebPage] | tuple[WebPage, ...]" = (),
        holdout: "list[LabeledExample] | tuple[LabeledExample, ...]" = (),
        *,
        ensemble_size: int = 1000,
        selection: str = "transductive",
        seed: int = 0,
        refit_deadline_seconds: "float | None" = None,
        f1_tolerance: float = 0.0,
    ) -> None:
        """Register a route for automatic refit on relevant feeds.

        ``session`` must be the live session the route's current tool
        was fitted from — that is what makes the refit warm.
        ``refit_deadline_seconds`` overrides the session's synthesis
        deadline for refits (a bound refit that gets cut rolls back);
        ``holdout`` gates swaps on held-out F1: a candidate scoring
        below the incumbent minus ``f1_tolerance`` is rejected.
        """
        if refit_deadline_seconds is not None:
            session.config = replace(
                session.config, deadline_seconds=refit_deadline_seconds
            )
        with self._lock:
            self._routes[route] = _TrackedRoute(
                route, session, list(unlabeled), list(holdout),
                ensemble_size, selection, seed, f1_tolerance,
            )

    def tracked(self) -> "tuple[str, ...]":
        with self._lock:
            return tuple(self._routes)

    # -- the feed path -------------------------------------------------------

    def feed(
        self,
        html: str,
        url: str = "",
        gold: "tuple[str, ...] | None" = None,
        *,
        wait: bool = True,
    ) -> FeedReport:
        """One changed page in: publish, invalidate, refit, swap.

        ``gold`` re-labels the page when it backs a labeled (or holdout)
        example; omitted, the existing label survives the content
        change.  Stage order is load-bearing: the store publish comes
        *first* and every in-memory effect after it, so a publish crash
        (real or injected) leaves cache, url map and routes exactly as
        they were — the previous generation still serves.
        """
        with self._lock:
            feed_index = self._feeds
            self._feeds += 1
            previous = self._urls.get(url, "")
            new_fingerprint = page_fingerprint(html, url)
            if previous == new_fingerprint:
                return FeedReport(
                    url=url, fingerprint=new_fingerprint,
                    previous_fingerprint=previous,
                    generation=self._generation(), invalidated=False,
                    unchanged=True,
                )
            # Parse outside the cache: the superseded entry must stay
            # live for in-flight queries until the publish succeeds.
            outcome = ingest_page(
                html, url, limits=getattr(self.service, "limits", None)
            )
            generation = self._publish(
                feed_index, new_fingerprint, outcome.page, outcome.degraded,
                removals=(previous,) if previous else (),
            )
            # -- publish succeeded; in-memory effects are now safe -----
            invalidated = False
            cache = getattr(self.service, "cache", None)
            if previous and cache is not None:
                invalidated = cache.invalidate(previous)
            if cache is not None:
                cache.put(new_fingerprint, outcome.page, outcome.degraded)
            self._urls[url] = new_fingerprint
            affected = [
                tracked for tracked in self._routes.values()
                if tracked.touches(url)
            ]
            for tracked in affected:
                self._replace_page(tracked, url, outcome.page, gold)
            if wait or not affected:
                swaps = tuple(
                    self._refit_route(tracked, feed_index)
                    for tracked in affected
                )
                return FeedReport(
                    url=url, fingerprint=new_fingerprint,
                    previous_fingerprint=previous, generation=generation,
                    invalidated=invalidated, unchanged=False, swaps=swaps,
                )
            thread = threading.Thread(
                target=self._refit_background,
                args=([tracked.route for tracked in affected], feed_index),
                name=f"live-refit-{feed_index}",
                daemon=True,
            )
            self._pending.append(thread)
            thread.start()
            return FeedReport(
                url=url, fingerprint=new_fingerprint,
                previous_fingerprint=previous, generation=generation,
                invalidated=invalidated, unchanged=False,
                pending_routes=tuple(t.route for t in affected),
            )

    def remove(self, url: str, *, wait: bool = True) -> FeedReport:
        """Remove a page from the corpus; refit routes that used it.

        The page leaves the store (hidden by the next generation's
        ``removed`` set) and the cache; tracked routes drop it from
        their unlabeled pools and holdouts.  Labeled examples are *not*
        silently dropped — removing training evidence is a task-level
        decision, so a removal touching a labeled page raises.
        """
        with self._lock:
            feed_index = self._feeds
            self._feeds += 1
            previous = self._urls.get(url, "")
            if not previous:
                return FeedReport(
                    url=url, fingerprint="", previous_fingerprint="",
                    generation=self._generation(), invalidated=False,
                    unchanged=True,
                )
            for tracked in self._routes.values():
                if any(ex.page.url == url for ex in tracked.session.examples):
                    raise ValueError(
                        f"page {url!r} backs a labeled example of route "
                        f"{tracked.route!r}; remove the example via the "
                        "session before removing the page"
                    )
            generation = self._publish(
                feed_index, "", None, False, removals=(previous,)
            )
            cache = getattr(self.service, "cache", None)
            invalidated = bool(
                cache.invalidate(previous) if cache is not None else False
            )
            del self._urls[url]
            affected = []
            for tracked in self._routes.values():
                touched = False
                kept = [p for p in tracked.unlabeled if p.url != url]
                if len(kept) != len(tracked.unlabeled):
                    tracked.unlabeled[:] = kept
                    touched = True
                kept_holdout = [
                    ex for ex in tracked.holdout if ex.page.url != url
                ]
                if len(kept_holdout) != len(tracked.holdout):
                    tracked.holdout[:] = kept_holdout
                    touched = True
                if touched:
                    affected.append(tracked)
            swaps = tuple(
                self._refit_route(tracked, feed_index)
                for tracked in (affected if wait else ())
            )
            if not wait and affected:
                thread = threading.Thread(
                    target=self._refit_background,
                    args=([t.route for t in affected], feed_index),
                    name=f"live-refit-{feed_index}",
                    daemon=True,
                )
                self._pending.append(thread)
                thread.start()
            return FeedReport(
                url=url, fingerprint="", previous_fingerprint=previous,
                generation=generation, invalidated=invalidated,
                unchanged=False, swaps=swaps,
                pending_routes=tuple(
                    t.route for t in (affected if not wait else ())
                ),
            )

    def drain(self) -> "list[RouteSwap]":
        """Join every background refit; return the swaps they produced."""
        while True:
            with self._lock:
                if not self._pending:
                    swaps, self._drained_swaps = self._drained_swaps, []
                    return swaps
                thread = self._pending[0]
            thread.join()
            with self._lock:
                if thread in self._pending:
                    self._pending.remove(thread)

    def compact(self) -> dict:
        """Squash generations into a fresh base; reload the reader.

        An inverted index riding the store is fully rebuilt (IDF refit
        over the squashed corpus) so its generation matches the
        compacted store's.
        """
        from ..retrieval.index import build_corpus_index, index_path
        from ..webtree.store import compact_store

        with self._lock:
            if self.store_path is None:
                raise ValueError("no store attached to compact")
            report = compact_store(self.store_path)
            store = getattr(self.service, "store", None)
            if store is not None:
                store.reload()
            if os.path.exists(index_path(self.store_path)):
                report["index"] = build_corpus_index(self.store_path)
            return report

    # -- internals -----------------------------------------------------------

    def _generation(self) -> int:
        store = getattr(self.service, "store", None)
        return store.generation if store is not None else -1

    def _publish(
        self,
        feed_index: int,
        fingerprint: str,
        page: "WebPage | None",
        degraded: bool,
        removals: "tuple[str, ...]",
    ) -> int:
        """Run the two-step store publish, with fault hooks in the seams."""
        if self.store_path is None:
            return -1
        updater = CorpusStoreUpdater(self.store_path)
        try:
            for stale in removals:
                updater.remove(stale)
            if page is not None:
                updater.update(fingerprint, page, degraded=degraded)
            if self._injector is not None and self._injector.tears_segment(
                feed_index
            ):
                # Simulate a crash mid-segment-write: leave the partial
                # ``.tmp`` on disk, publish nothing.
                updater.abandon()
                raise IngestError(
                    f"injected torn segment (feed {feed_index})",
                    transient=False, injected=True,
                )
            updater.publish_segment()
            if self._injector is not None:
                # Crash window: segment durable, manifest not yet
                # swapped — the store must reopen one generation back.
                self._injector.before_publish(feed_index)
            generation = updater.publish_manifest()
        except Exception:
            # Idempotent: a torn-segment abandon() already closed the
            # updater; after a publish-crash the orphan segment stays on
            # disk for GC, exactly as a real crash would leave it.
            updater.abort()
            raise
        store = getattr(self.service, "store", None)
        if store is not None:
            store.reload()
        self._sync_index(
            changed=(fingerprint,) if page is not None else (),
            removed=removals,
        )
        return generation

    def _sync_index(
        self, changed: "tuple[str, ...]", removed: "tuple[str, ...]"
    ) -> None:
        """Advance the inverted index to the just-published generation.

        Runs strictly *after* the store publish (store-first ordering):
        a crash in this window leaves the index one store generation
        behind, which routed answering detects
        (:meth:`~repro.retrieval.index.CorpusIndexReader.ensure_fresh`
        fails closed with a rebuild hint) — stale postings never route.
        No-op while no index has been built.
        """
        from ..retrieval.index import update_corpus_index

        if self.store_path is None:
            return
        update_corpus_index(
            self.store_path, changed=changed, removed=removed
        )

    def _replace_page(
        self,
        tracked: _TrackedRoute,
        url: str,
        page: WebPage,
        gold: "tuple[str, ...] | None",
    ) -> None:
        """Swap the new page into the route's pools, labels intact."""
        for i, unlabeled_page in enumerate(tracked.unlabeled):
            if unlabeled_page.url == url:
                tracked.unlabeled[i] = page
        for i, example in enumerate(tracked.session.examples):
            if example.page.url == url:
                tracked.session.replace_example(
                    i, LabeledExample(page, gold or example.gold)
                )
        for i, example in enumerate(tracked.holdout):
            if example.page.url == url:
                tracked.holdout[i] = LabeledExample(
                    page, gold or example.gold
                )

    def _refit_route(
        self, tracked: _TrackedRoute, feed_index: int
    ) -> RouteSwap:
        """Warm-refit one route; swap on success, keep the old otherwise.

        Rollback is by abstention: the candidate is validated *before*
        it ever enters the routing table, so "roll back" simply means
        "do not swap" — there is no window where a failed refit serves,
        and nothing to undo on any failure path.
        """
        service = self.service
        route = tracked.route
        old_version = service.route_version(route)
        old_tool = service.tool(route)
        started = time.perf_counter()
        reason = ""
        candidate: "WebQA | None" = None
        try:
            if self._injector is not None:
                self._injector.before_refit(feed_index)
            candidate = WebQA(
                config=tracked.session.config,
                ensemble_size=tracked.ensemble_size,
                selection=tracked.selection,
                seed=tracked.seed,
            )
            candidate.fit_session(tracked.session, list(tracked.unlabeled))
        except Exception:
            reason = "refit-error"
        elapsed = time.perf_counter() - started
        holdout_f1 = -1.0
        if not reason:
            assert candidate is not None and candidate.report is not None
            if candidate.report.synthesis.stats.completed is False:
                reason = "refit-deadline"
        if not reason and tracked.holdout:
            assert candidate is not None
            holdout_f1 = score_examples(
                [(candidate.predict(ex.page), ex.gold) for ex in tracked.holdout]
            ).f1
            try:
                incumbent_f1 = score_examples(
                    [(old_tool.predict(ex.page), ex.gold) for ex in tracked.holdout]
                ).f1
            except Exception:
                # An incumbent that cannot even answer the held-out
                # pages sets no bar.
                incumbent_f1 = 0.0
            if holdout_f1 < incumbent_f1 - tracked.f1_tolerance:
                reason = "holdout-regression"
        if reason:
            service.stats.record_rollback()
            return RouteSwap(
                route=route, swapped=False, version=old_version,
                previous_version=old_version, reason=reason,
                refit_seconds=elapsed, holdout_f1=holdout_f1,
            )
        assert candidate is not None
        artifact = candidate.export_artifact()
        version = artifact.fingerprint()
        service.register(route, candidate, version=version)
        return RouteSwap(
            route=route, swapped=True, version=version,
            previous_version=old_version, reason="",
            refit_seconds=elapsed, holdout_f1=holdout_f1,
        )

    def _refit_background(
        self, routes: "list[str]", feed_index: int
    ) -> None:
        for route in routes:
            with self._lock:
                tracked = self._routes.get(route)
            if tracked is None:
                continue
            swap = self._refit_route(tracked, feed_index)
            with self._lock:
                self._drained_swaps.append(swap)
