"""Deterministic fault injection and adversarial HTML for serving chaos.

Fault-tolerance code is only trustworthy if its failure paths run in CI
on every commit, and failure paths only run reliably if failures are
**injected deterministically** — a chaos test that flips real coins
cannot assert "request 7 fails twice then succeeds".  This module is the
injection harness:

* :class:`FaultPlan` — a frozen, picklable description of *exactly*
  which request indices fail, at which pipeline stage, for how many
  attempts.  The same plan drives the same failures on the thread and
  process backends, in tests and in the ``serve-chaos`` bench.
* :class:`FaultInjector` — the stateless executor of a plan, called
  from the service's ingest/predict hooks.  Stateless is load-bearing:
  process workers get a *pickled copy*, so any mutable attempt counter
  kept here would silently diverge between parent and worker.  Instead
  the **caller** tracks attempt numbers and passes them in, making the
  injector a pure function of ``(plan, index, attempt)``.
* :func:`adversarial_html` — a seeded generator of hostile-but-legal
  pages (unclosed tag soup, huge flat sibling lists, entity soup, deep
  nesting, near-duplicate decoys) that exercise the ingest guards and
  the extractor's robustness without any network or fixture files.

Nothing in this module is imported by the happy path: a service built
without a ``fault_injector`` pays zero overhead.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..core.errors import IngestError, PredictError

#: Attempt-count value meaning "every attempt" (a permanent fault).
ALWAYS = -1


@dataclass(frozen=True)
class FaultPlan:
    """Which request indices fail, where, and for how many attempts.

    Each mapping is request-index → *fault budget*: a positive budget
    ``n`` makes the first ``n`` attempts fail with a **transient** error
    (a bounded retry cures it); :data:`ALWAYS` (``-1``) makes *every*
    attempt fail with a **terminal** error (a poisoned request no retry
    should waste time on).

    All fields are plain dicts/frozensets of ints and floats, so a plan
    pickles cleanly into process-pool workers and compares by value in
    tests.
    """

    #: Ingest-stage faults (raw HTML refuses to parse).
    ingest_faults: Mapping[int, int] = field(default_factory=dict)
    #: Predict-stage faults (the program evaluation blows up).
    predict_faults: Mapping[int, int] = field(default_factory=dict)
    #: Indices whose *compiled* plan fails, forcing the interpreted
    #: fallback (the request still succeeds, flagged degraded).
    compiled_faults: frozenset = frozenset()
    #: Artificial predict latency per index, in seconds — the lever for
    #: driving deadline tests without real slow work.
    latency_seconds: Mapping[int, float] = field(default_factory=dict)
    #: Indices whose first predict attempt kills the whole worker pool.
    pool_crashes: frozenset = frozenset()
    #: *Feed* indices (the live-corpus update path counts its own feeds,
    #: a separate namespace from request indices) that crash between the
    #: segment publish and the manifest publish — the torn-write window
    #: the generational store must survive.
    publish_crashes: frozenset = frozenset()
    #: Feed indices whose update segment is torn mid-write (the writer
    #: abandons a partial ``.tmp``, as a real crash would leave it).
    torn_segments: frozenset = frozenset()
    #: Feed-index → fault budget for the background refit stage; a
    #: failed refit must roll the route back, never serve half a fit.
    refit_faults: Mapping[int, int] = field(default_factory=dict)
    #: Identifies the plan in error messages and bench tables.
    seed: int = 0

    @classmethod
    def from_rates(
        cls,
        n_requests: int,
        *,
        seed: int = 0,
        ingest_rate: float = 0.0,
        predict_rate: float = 0.0,
        permanent_rate: float = 0.0,
        transient_attempts: int = 1,
        compiled_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency: float = 0.05,
        pool_crashes: "tuple[int, ...]" = (),
    ) -> "FaultPlan":
        """Sample a plan over ``n_requests`` indices, deterministically.

        The same ``(n_requests, seed, rates)`` always yields the same
        plan — the sampler is seeded and draws in a fixed order, so a
        chaos run is reproducible from its parameters alone.
        ``permanent_rate`` is the fraction of *faulted* predict indices
        whose budget is :data:`ALWAYS` instead of ``transient_attempts``.
        """
        rng = random.Random(f"fault-plan:{seed}")
        ingest_faults: dict[int, int] = {}
        predict_faults: dict[int, int] = {}
        compiled: set[int] = set()
        latencies: dict[int, float] = {}
        for index in range(n_requests):
            if rng.random() < ingest_rate:
                ingest_faults[index] = transient_attempts
            if rng.random() < predict_rate:
                permanent = rng.random() < permanent_rate
                predict_faults[index] = ALWAYS if permanent else transient_attempts
            if rng.random() < compiled_rate:
                compiled.add(index)
            if rng.random() < latency_rate:
                latencies[index] = latency
        return cls(
            ingest_faults=ingest_faults,
            predict_faults=predict_faults,
            compiled_faults=frozenset(compiled),
            latency_seconds=latencies,
            pool_crashes=frozenset(pool_crashes),
            seed=seed,
        )

    def faulted_indices(self) -> frozenset:
        """Every *request* index the plan touches, for test bookkeeping."""
        return frozenset(
            set(self.ingest_faults)
            | set(self.predict_faults)
            | self.compiled_faults
            | set(self.latency_seconds)
            | self.pool_crashes
        )

    def faulted_feeds(self) -> frozenset:
        """Every *feed* index the plan touches on the live-update path."""
        return frozenset(
            self.publish_crashes | self.torn_segments | set(self.refit_faults)
        )


def _fires(budget: "int | None", attempt: int) -> "tuple[bool, bool]":
    """``(fires, transient)`` for a fault budget at a given attempt."""
    if budget is None:
        return False, False
    if budget == ALWAYS:
        return True, False
    return attempt < budget, True


@dataclass(frozen=True)
class FaultInjector:
    """Executes a :class:`FaultPlan` at the service's stage hooks.

    A pure function of ``(plan, index, attempt)`` — see the module
    docstring for why attempt counters live with the caller.  Every
    raised error carries ``injected=True`` so chaos tests can tell
    planned failures from organic bugs.
    """

    plan: FaultPlan

    def before_ingest(self, index: int, attempt: int = 0) -> None:
        """Raise the planned ingest fault for ``(index, attempt)``."""
        fires, transient = _fires(self.plan.ingest_faults.get(index), attempt)
        if fires:
            raise IngestError(
                f"injected ingest fault (request {index}, attempt {attempt}, "
                f"plan seed {self.plan.seed})",
                transient=transient,
                injected=True,
                retries=attempt,
            )

    def before_predict(
        self, index: int, attempt: int = 0, allow_exit: bool = False
    ) -> None:
        """Apply planned latency, pool crash or predict fault, in that order.

        ``allow_exit`` gates the pool-crash fault behind the process
        backend: ``os._exit`` in a *thread* worker would take the test
        process down with it, so on thread pools the crash degrades to a
        transient :class:`PredictError` — same retry path, survivable.
        A crash fires only on attempt 0; the retry after the pool
        rebuild must be allowed to succeed.
        """
        delay = self.plan.latency_seconds.get(index)
        if delay:
            time.sleep(delay)
        if index in self.plan.pool_crashes and attempt == 0:
            if allow_exit:
                os._exit(13)
            raise PredictError(
                f"injected worker crash (request {index}, thread-backend "
                f"degradation, plan seed {self.plan.seed})",
                transient=True,
                injected=True,
            )
        fires, transient = _fires(self.plan.predict_faults.get(index), attempt)
        if fires:
            raise PredictError(
                f"injected predict fault (request {index}, attempt {attempt}, "
                f"plan seed {self.plan.seed})",
                transient=transient,
                injected=True,
                retries=attempt,
            )

    def breaks_compiled(self, index: int) -> bool:
        """Whether the compiled plan should fail for this index."""
        return index in self.plan.compiled_faults

    # -- live-update path (feed indices, not request indices) ----------------

    def tears_segment(self, feed_index: int) -> bool:
        """Whether this feed's update segment should be torn mid-write.

        The caller (:class:`~repro.serving.live.LiveCorpus`) abandons the
        in-flight segment ``.tmp`` exactly as a crash would, then raises
        — the next open must still serve the previous generation.
        """
        return feed_index in self.plan.torn_segments

    def before_publish(self, feed_index: int) -> None:
        """Raise the planned crash between segment and manifest publish.

        This is the narrowest torn-write window of the generational
        store: the new segment is durable but unreferenced.  The store
        must reopen at the previous generation and a later GC must
        collect the orphan.
        """
        if feed_index in self.plan.publish_crashes:
            raise IngestError(
                f"injected publish crash (feed {feed_index}, plan seed "
                f"{self.plan.seed})",
                transient=False,
                injected=True,
            )

    def before_refit(self, feed_index: int, attempt: int = 0) -> None:
        """Raise the planned refit fault for ``(feed_index, attempt)``."""
        fires, transient = _fires(self.plan.refit_faults.get(feed_index), attempt)
        if fires:
            raise PredictError(
                f"injected refit fault (feed {feed_index}, attempt {attempt}, "
                f"plan seed {self.plan.seed})",
                transient=transient,
                injected=True,
                retries=attempt,
            )


# ---------------------------------------------------------------------------
# Adversarial HTML generation
# ---------------------------------------------------------------------------

#: The generator's repertoire, in the order ``adversarial_corpus`` emits it.
ADVERSARIAL_KINDS = (
    "unclosed_tags",
    "flat_siblings",
    "entity_soup",
    "deep_nesting",
    "decoy_duplicates",
    "truncated_tag_soup",
)

_WORDS = (
    "alpha", "bravo", "carol", "delta", "echo", "felix", "greta", "hotel",
    "india", "jolt", "kilo", "lima", "mike", "nova", "oscar", "papa",
)


def _rng(kind: str, seed: int) -> random.Random:
    return random.Random(f"adversarial:{kind}:{seed}")


def adversarial_html(kind: str, seed: int = 0, scale: int = 1) -> str:
    """One hostile page of the given ``kind``, deterministic in ``seed``.

    ``scale`` multiplies the structural size (sibling counts, nesting
    depth, soup length); ``scale=1`` is sized for fast unit tests,
    larger scales for the chaos bench.  Every kind is *valid input* to
    the tag-soup parser — the point is never to crash the tokenizer but
    to stress recovery, the ingest guards, and extraction precision.

    Kinds
    -----
    ``unclosed_tags``
        Sections and list items that never close, exercising the
        parser's implicit-close recovery end to end.
    ``flat_siblings``
        One enormous flat ``<ul>`` — thousands of siblings under one
        parent, the node-budget guard's target shape.
    ``entity_soup``
        Text dominated by character references and stray ``&``/``<``,
        stressing tokenizer decode paths.
    ``deep_nesting``
        Divs nested far beyond any legitimate page, the depth guard's
        target shape (unguarded, this drives recursive tree walks
        toward ``RecursionError``).
    ``decoy_duplicates``
        Near-duplicate sections whose headers and items differ by one
        token — precision bait for keyword-anchored locators.
    ``truncated_tag_soup``
        A page cut mid-tag and mid-entity, as a broken crawler would
        deliver it.
    """
    if kind not in ADVERSARIAL_KINDS:
        raise ValueError(f"kind must be one of {ADVERSARIAL_KINDS}, got {kind!r}")
    rng = _rng(kind, seed)
    words = lambda n: " ".join(rng.choice(_WORDS) for _ in range(n))  # noqa: E731

    if kind == "unclosed_tags":
        parts = [f"<html><body><h1>{words(2)}"]
        for _ in range(20 * scale):
            roll = rng.random()
            if roll < 0.3:
                parts.append(f"<h2>{words(2)}")
            elif roll < 0.6:
                parts.append(f"<ul><li>{words(3)}<li>{words(3)}")
            elif roll < 0.8:
                parts.append(f"<p><b>{words(2)}</b> {words(4)}")
            else:
                parts.append(f"<table><tr><td>{words(2)}<td>{words(2)}")
        return "".join(parts)

    if kind == "flat_siblings":
        items = "".join(
            f"<li>{rng.choice(_WORDS)} item {i}</li>" for i in range(2000 * scale)
        )
        return (
            f"<html><body><h1>{words(2)}</h1><h2>Entries</h2><ul>{items}</ul>"
            "</body></html>"
        )

    if kind == "entity_soup":
        entities = ("&amp;", "&lt;", "&gt;", "&#65;", "&#x42;", "&nbsp;", "&", "< ")
        soup = "".join(
            rng.choice(entities) if rng.random() < 0.5 else rng.choice(_WORDS) + " "
            for _ in range(1500 * scale)
        )
        return (
            f"<html><body><h1>{words(2)}</h1><p>{soup}</p>"
            f"<h2>{words(2)}</h2><p>{soup[: 400 * scale]}</p></body></html>"
        )

    if kind == "deep_nesting":
        depth = 400 * scale
        return (
            f"<html><body><h1>{words(2)}</h1>"
            + "<div>" * depth
            + f"<p>{words(5)}</p>"
            + "</div>" * depth
            + "</body></html>"
        )

    if kind == "decoy_duplicates":
        base = words(2)
        sections = []
        for i in range(12 * scale):
            decoy = f"{base} {rng.choice(_WORDS)}" if i else base
            items = "".join(f"<li>{decoy} member {j}</li>" for j in range(4))
            sections.append(f"<h2>{decoy}</h2><ul>{items}</ul>")
        return (
            f"<html><body><h1>{words(2)}</h1>{''.join(sections)}</body></html>"
        )

    # truncated_tag_soup
    body = adversarial_html("unclosed_tags", seed=seed, scale=scale)
    cut = rng.randrange(len(body) // 2, len(body))
    return body[:cut] + "<tabl"


def adversarial_corpus(seed: int = 0, scale: int = 1) -> "list[tuple[str, str]]":
    """``(kind, html)`` for every adversarial kind at one seed/scale."""
    return [
        (kind, adversarial_html(kind, seed=seed, scale=scale))
        for kind in ADVERSARIAL_KINDS
    ]
