"""Two-process artifact/serving smoke check (the CI `artifact-serving` job).

Phase 1 (``export``) fits one small task per domain, exports each
program artifact, renders the task's test pages back to HTML files and
records the fitted tools' expected answers.  Phase 2 (``serve``) runs in
a **fresh process**: it loads the artifacts, registers them on a
:class:`~repro.serving.QAService`, serves the HTML through the full
ingest → route → batch → predict pipeline, and fails unless

* every answer is bit-identical to the fitted tool's recorded answer,
* zero synthesis searches ran in the serving process
  (:func:`~repro.synthesis.session.synthesis_call_count`).

The corpus variant (the CI `corpus-serving` job) proves the disk-backed
store end to end: ``corpus-export`` additionally parses the exported
HTML once into a columnar store file, and ``corpus-serve`` serves from
it in a fresh interpreter asserting **zero** ``parse_html`` calls
(:func:`~repro.html.parser.parse_call_count`) on top of the identical-
answers and zero-synthesis bars — pages must rehydrate from planes, not
re-parse.

Usage::

    python -m repro.serving.smoke export --dir smoke-out
    python -m repro.serving.smoke serve  --dir smoke-out   # fresh process
    python -m repro.serving.smoke corpus-export --dir smoke-out
    python -m repro.serving.smoke corpus-serve  --dir smoke-out
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..core.webqa import WebQA
from ..dataset.corpus import load_task_dataset
from ..dataset.tasks import TASKS_BY_ID
from ..html.parser import parse_call_count
from ..persist import read_artifact, write_artifact
from .ingest import ingest_html
from .service import QAService, ServingRequest
from ..synthesis.session import synthesis_call_count
from ..webtree.html_out import page_to_html

#: One quick task per domain: enough to exercise routing across
#: heterogeneous programs while staying CI-cheap.
SMOKE_TASKS = ("fac_t1", "conf_t1", "class_t2", "clinic_t5")

MANIFEST = "manifest.json"

#: Columnar store file written by ``corpus-export`` next to the manifest.
CORPUS_FILE = "corpus.rpw"


def run_export(out_dir: Path, n_pages: int, n_train: int) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"tasks": []}
    for task_id in SMOKE_TASKS:
        task = TASKS_BY_ID[task_id]
        dataset = load_task_dataset(task, n_pages=n_pages, n_train=n_train, seed=0)
        tool = WebQA(ensemble_size=50).fit(
            task.question,
            task.keywords,
            list(dataset.train),
            list(dataset.test_pages),
            dataset.models,
        )
        artifact_path = out_dir / f"{task_id}.artifact.json"
        tool.export_artifact(
            str(artifact_path),
            task_meta={"task_id": task.task_id, "domain": task.domain},
        )
        entry = {"task_id": task_id, "artifact": artifact_path.name, "pages": []}
        for position, page in enumerate(dataset.test_pages):
            html_path = out_dir / f"{task_id}.page{position}.html"
            html_path.write_text(page_to_html(page), encoding="utf-8")
            # Expected answers come from re-ingesting the rendered HTML
            # through the *fitted* tool, so the serve phase compares the
            # loaded artifact against the synthesizing tool on byte-
            # identical inputs (rendering is canonical but the re-parsed
            # tree is only isomorphic to the generator's original).
            reparsed = ingest_html(
                html_path.read_text(encoding="utf-8"), url=page.url
            )
            entry["pages"].append(
                {
                    "html": html_path.name,
                    "url": page.url,
                    "expected": list(tool.predict(reparsed)),
                }
            )
        manifest["tasks"].append(entry)
        print(f"exported {task_id}: {len(entry['pages'])} pages")
    write_artifact(str(out_dir / MANIFEST), manifest)
    print(f"export complete: {out_dir / MANIFEST}")
    return 0


def run_serve(out_dir: Path, jobs: int, max_batch: int) -> int:
    calls_before = synthesis_call_count()
    manifest = read_artifact(str(out_dir / MANIFEST))
    requests: list[ServingRequest] = []
    expected: list[tuple[str, ...]] = []
    with QAService(jobs=jobs, max_batch=max_batch) as service:
        for entry in manifest["tasks"]:
            service.register(entry["task_id"], str(out_dir / entry["artifact"]))
            for page_entry in entry["pages"]:
                html = (out_dir / page_entry["html"]).read_text(encoding="utf-8")
                requests.append(
                    ServingRequest(
                        route=entry["task_id"], html=html, url=page_entry["url"]
                    )
                )
                expected.append(tuple(page_entry["expected"]))
        # Serve twice: the second pass must hit the page cache.
        answers = service.ask_many(requests)
        answers_again = service.ask_many(requests)

    failures = 0
    for request, got, want in zip(requests, answers, expected):
        if tuple(got) != want:
            failures += 1
            print(
                f"MISMATCH route={request.route} url={request.url}: "
                f"got {got!r}, expected {want!r}",
                file=sys.stderr,
            )
    if answers_again != answers:
        failures += 1
        print("MISMATCH: warm-cache pass differs from cold pass", file=sys.stderr)
    if service.cache.stats.cache_hits < len(requests):
        failures += 1
        print(
            f"PAGE CACHE INEFFECTIVE: {service.cache.stats.cache_hits} hits "
            f"over {2 * len(requests)} requests",
            file=sys.stderr,
        )
    synthesis_calls = synthesis_call_count() - calls_before
    if synthesis_calls != 0:
        failures += 1
        print(
            f"SYNTHESIS IN SERVING PATH: {synthesis_calls} synthesize() calls "
            f"during load+serve (must be 0)",
            file=sys.stderr,
        )
    print(json.dumps(service.stats.as_dict(), indent=2))
    print(json.dumps({"page_cache": service.cache.stats.as_dict()}, indent=2))
    if failures:
        print(f"serving smoke FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print(
        f"serving smoke OK: {len(requests)} requests x2 passes, "
        f"{len(manifest['tasks'])} routes, 0 synthesis calls"
    )
    return 0


def run_corpus_export(out_dir: Path, n_pages: int, n_train: int) -> int:
    """``export`` plus a columnar store over the exported pages.

    The store is keyed by ``page_fingerprint(html, url)`` over the exact
    ``(html, url)`` pairs the serve phase will request, so every serve-
    phase ingest must resolve from planes on disk.
    """
    status = run_export(out_dir, n_pages, n_train)
    if status:
        return status
    from .corpus import build_corpus_store

    manifest = read_artifact(str(out_dir / MANIFEST))
    documents = []
    for entry in manifest["tasks"]:
        for page_entry in entry["pages"]:
            html = (out_dir / page_entry["html"]).read_text(encoding="utf-8")
            documents.append((html, page_entry["url"]))
    report = build_corpus_store(documents, str(out_dir / CORPUS_FILE))
    print(json.dumps({"corpus_store": report}, indent=2))
    return 0


def run_corpus_serve(out_dir: Path, jobs: int, max_batch: int) -> int:
    """``serve`` from the columnar store: zero parses allowed.

    Runs in a fresh interpreter after ``corpus-export``: every page must
    rehydrate from the store (``store_hits`` covers every request,
    ``parse_call_count()`` delta stays 0) and answers must match the
    fitted tools bit-for-bit — proving store-backed serving ≡ the parse
    path without ever invoking the parser.
    """
    parses_before = parse_call_count()
    calls_before = synthesis_call_count()
    manifest = read_artifact(str(out_dir / MANIFEST))
    requests: list[ServingRequest] = []
    expected: list[tuple[str, ...]] = []
    store_path = out_dir / CORPUS_FILE
    with QAService(
        jobs=jobs, max_batch=max_batch, store=str(store_path)
    ) as service:
        for entry in manifest["tasks"]:
            service.register(entry["task_id"], str(out_dir / entry["artifact"]))
            for page_entry in entry["pages"]:
                html = (out_dir / page_entry["html"]).read_text(encoding="utf-8")
                requests.append(
                    ServingRequest(
                        route=entry["task_id"], html=html, url=page_entry["url"]
                    )
                )
                expected.append(tuple(page_entry["expected"]))
        answers = service.ask_many(requests)
        answers_again = service.ask_many(requests)

    failures = 0
    for request, got, want in zip(requests, answers, expected):
        if tuple(got) != want:
            failures += 1
            print(
                f"MISMATCH route={request.route} url={request.url}: "
                f"got {got!r}, expected {want!r}",
                file=sys.stderr,
            )
    if answers_again != answers:
        failures += 1
        print("MISMATCH: warm-cache pass differs from cold pass", file=sys.stderr)
    store_hits = service.cache.stats.store_hits
    if store_hits < len(requests):
        failures += 1
        print(
            f"STORE INEFFECTIVE: {store_hits} store hits over "
            f"{len(requests)} cold requests (every miss must resolve "
            f"from the store)",
            file=sys.stderr,
        )
    parse_calls = parse_call_count() - parses_before
    if parse_calls != 0:
        failures += 1
        print(
            f"PARSE IN STORE-BACKED SERVING: {parse_calls} parse_html "
            f"calls during load+serve (must be 0)",
            file=sys.stderr,
        )
    synthesis_calls = synthesis_call_count() - calls_before
    if synthesis_calls != 0:
        failures += 1
        print(
            f"SYNTHESIS IN SERVING PATH: {synthesis_calls} synthesize() "
            f"calls during load+serve (must be 0)",
            file=sys.stderr,
        )
    print(json.dumps(service.stats.as_dict(), indent=2))
    print(json.dumps({"page_cache": service.cache.stats.as_dict()}, indent=2))
    if failures:
        print(f"corpus smoke FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print(
        f"corpus smoke OK: {len(requests)} requests x2 passes, "
        f"{store_hits} store hits, 0 parse calls, 0 synthesis calls"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="phase", required=True)
    export = sub.add_parser("export", help="fit tasks and write artifacts+pages")
    export.add_argument("--dir", type=Path, required=True)
    export.add_argument("--pages", type=int, default=8)
    export.add_argument("--train", type=int, default=3)
    serve = sub.add_parser("serve", help="load artifacts and serve in-process")
    serve.add_argument("--dir", type=Path, required=True)
    serve.add_argument("--jobs", type=int, default=2)
    serve.add_argument("--max-batch", type=int, default=8)
    corpus_export = sub.add_parser(
        "corpus-export", help="export plus build a columnar corpus store"
    )
    corpus_export.add_argument("--dir", type=Path, required=True)
    corpus_export.add_argument("--pages", type=int, default=8)
    corpus_export.add_argument("--train", type=int, default=3)
    corpus_serve = sub.add_parser(
        "corpus-serve", help="serve from the store: 0 parse calls allowed"
    )
    corpus_serve.add_argument("--dir", type=Path, required=True)
    corpus_serve.add_argument("--jobs", type=int, default=2)
    corpus_serve.add_argument("--max-batch", type=int, default=8)
    args = parser.parse_args(argv)
    if args.phase == "export":
        return run_export(args.dir, args.pages, args.train)
    if args.phase == "corpus-export":
        return run_corpus_export(args.dir, args.pages, args.train)
    if args.phase == "corpus-serve":
        return run_corpus_serve(args.dir, args.jobs, args.max_batch)
    return run_serve(args.dir, args.jobs, args.max_batch)


if __name__ == "__main__":
    sys.exit(main())
