"""Two-process artifact/serving smoke check (the CI `artifact-serving` job).

Phase 1 (``export``) fits one small task per domain, exports each
program artifact, renders the task's test pages back to HTML files and
records the fitted tools' expected answers.  Phase 2 (``serve``) runs in
a **fresh process**: it loads the artifacts, registers them on a
:class:`~repro.serving.QAService`, serves the HTML through the full
ingest → route → batch → predict pipeline, and fails unless

* every answer is bit-identical to the fitted tool's recorded answer,
* zero synthesis searches ran in the serving process
  (:func:`~repro.synthesis.session.synthesis_call_count`).

The corpus variant (the CI `corpus-serving` job) proves the disk-backed
store end to end: ``corpus-export`` additionally parses the exported
HTML once into a columnar store file, and ``corpus-serve`` serves from
it in a fresh interpreter asserting **zero** ``parse_html`` calls
(:func:`~repro.html.parser.parse_call_count`) on top of the identical-
answers and zero-synthesis bars — pages must rehydrate from planes, not
re-parse.

Usage::

    python -m repro.serving.smoke export --dir smoke-out
    python -m repro.serving.smoke serve  --dir smoke-out   # fresh process
    python -m repro.serving.smoke corpus-export --dir smoke-out
    python -m repro.serving.smoke corpus-serve  --dir smoke-out
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..core.webqa import WebQA
from ..dataset.corpus import load_task_dataset
from ..dataset.tasks import TASKS_BY_ID
from ..html.parser import parse_call_count
from ..persist import read_artifact, write_artifact
from .ingest import ingest_html
from .service import QAService, ServingRequest
from ..synthesis.session import synthesis_call_count
from ..webtree.html_out import page_to_html

#: One quick task per domain: enough to exercise routing across
#: heterogeneous programs while staying CI-cheap.
SMOKE_TASKS = ("fac_t1", "conf_t1", "class_t2", "clinic_t5")

MANIFEST = "manifest.json"

#: Columnar store file written by ``corpus-export`` next to the manifest.
CORPUS_FILE = "corpus.rpw"


def run_export(out_dir: Path, n_pages: int, n_train: int) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"tasks": []}
    for task_id in SMOKE_TASKS:
        task = TASKS_BY_ID[task_id]
        dataset = load_task_dataset(task, n_pages=n_pages, n_train=n_train, seed=0)
        tool = WebQA(ensemble_size=50).fit(
            task.question,
            task.keywords,
            list(dataset.train),
            list(dataset.test_pages),
            dataset.models,
        )
        artifact_path = out_dir / f"{task_id}.artifact.json"
        tool.export_artifact(
            str(artifact_path),
            task_meta={"task_id": task.task_id, "domain": task.domain},
        )
        entry = {"task_id": task_id, "artifact": artifact_path.name, "pages": []}
        for position, page in enumerate(dataset.test_pages):
            html_path = out_dir / f"{task_id}.page{position}.html"
            html_path.write_text(page_to_html(page), encoding="utf-8")
            # Expected answers come from re-ingesting the rendered HTML
            # through the *fitted* tool, so the serve phase compares the
            # loaded artifact against the synthesizing tool on byte-
            # identical inputs (rendering is canonical but the re-parsed
            # tree is only isomorphic to the generator's original).
            reparsed = ingest_html(
                html_path.read_text(encoding="utf-8"), url=page.url
            )
            entry["pages"].append(
                {
                    "html": html_path.name,
                    "url": page.url,
                    "expected": list(tool.predict(reparsed)),
                }
            )
        manifest["tasks"].append(entry)
        print(f"exported {task_id}: {len(entry['pages'])} pages")
    write_artifact(str(out_dir / MANIFEST), manifest)
    print(f"export complete: {out_dir / MANIFEST}")
    return 0


def run_serve(out_dir: Path, jobs: int, max_batch: int) -> int:
    calls_before = synthesis_call_count()
    manifest = read_artifact(str(out_dir / MANIFEST))
    requests: list[ServingRequest] = []
    expected: list[tuple[str, ...]] = []
    with QAService(jobs=jobs, max_batch=max_batch) as service:
        for entry in manifest["tasks"]:
            service.register(entry["task_id"], str(out_dir / entry["artifact"]))
            for page_entry in entry["pages"]:
                html = (out_dir / page_entry["html"]).read_text(encoding="utf-8")
                requests.append(
                    ServingRequest(
                        route=entry["task_id"], html=html, url=page_entry["url"]
                    )
                )
                expected.append(tuple(page_entry["expected"]))
        # Serve twice: the second pass must hit the page cache.
        answers = service.ask_many(requests)
        answers_again = service.ask_many(requests)

    failures = 0
    for request, got, want in zip(requests, answers, expected):
        if tuple(got) != want:
            failures += 1
            print(
                f"MISMATCH route={request.route} url={request.url}: "
                f"got {got!r}, expected {want!r}",
                file=sys.stderr,
            )
    if answers_again != answers:
        failures += 1
        print("MISMATCH: warm-cache pass differs from cold pass", file=sys.stderr)
    if service.cache.stats.cache_hits < len(requests):
        failures += 1
        print(
            f"PAGE CACHE INEFFECTIVE: {service.cache.stats.cache_hits} hits "
            f"over {2 * len(requests)} requests",
            file=sys.stderr,
        )
    synthesis_calls = synthesis_call_count() - calls_before
    if synthesis_calls != 0:
        failures += 1
        print(
            f"SYNTHESIS IN SERVING PATH: {synthesis_calls} synthesize() calls "
            f"during load+serve (must be 0)",
            file=sys.stderr,
        )
    print(json.dumps(service.stats.as_dict(), indent=2))
    print(json.dumps({"page_cache": service.cache.stats.as_dict()}, indent=2))
    if failures:
        print(f"serving smoke FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print(
        f"serving smoke OK: {len(requests)} requests x2 passes, "
        f"{len(manifest['tasks'])} routes, 0 synthesis calls"
    )
    return 0


def run_corpus_export(out_dir: Path, n_pages: int, n_train: int) -> int:
    """``export`` plus a columnar store over the exported pages.

    The store is keyed by ``page_fingerprint(html, url)`` over the exact
    ``(html, url)`` pairs the serve phase will request, so every serve-
    phase ingest must resolve from planes on disk.
    """
    status = run_export(out_dir, n_pages, n_train)
    if status:
        return status
    from .corpus import build_corpus_store

    manifest = read_artifact(str(out_dir / MANIFEST))
    documents = []
    for entry in manifest["tasks"]:
        for page_entry in entry["pages"]:
            html = (out_dir / page_entry["html"]).read_text(encoding="utf-8")
            documents.append((html, page_entry["url"]))
    report = build_corpus_store(documents, str(out_dir / CORPUS_FILE))
    print(json.dumps({"corpus_store": report}, indent=2))
    return 0


def run_corpus_serve(out_dir: Path, jobs: int, max_batch: int) -> int:
    """``serve`` from the columnar store: zero parses allowed.

    Runs in a fresh interpreter after ``corpus-export``: every page must
    rehydrate from the store (``store_hits`` covers every request,
    ``parse_call_count()`` delta stays 0) and answers must match the
    fitted tools bit-for-bit — proving store-backed serving ≡ the parse
    path without ever invoking the parser.
    """
    parses_before = parse_call_count()
    calls_before = synthesis_call_count()
    manifest = read_artifact(str(out_dir / MANIFEST))
    requests: list[ServingRequest] = []
    expected: list[tuple[str, ...]] = []
    store_path = out_dir / CORPUS_FILE
    with QAService(
        jobs=jobs, max_batch=max_batch, store=str(store_path)
    ) as service:
        for entry in manifest["tasks"]:
            service.register(entry["task_id"], str(out_dir / entry["artifact"]))
            for page_entry in entry["pages"]:
                html = (out_dir / page_entry["html"]).read_text(encoding="utf-8")
                requests.append(
                    ServingRequest(
                        route=entry["task_id"], html=html, url=page_entry["url"]
                    )
                )
                expected.append(tuple(page_entry["expected"]))
        answers = service.ask_many(requests)
        answers_again = service.ask_many(requests)

    failures = 0
    for request, got, want in zip(requests, answers, expected):
        if tuple(got) != want:
            failures += 1
            print(
                f"MISMATCH route={request.route} url={request.url}: "
                f"got {got!r}, expected {want!r}",
                file=sys.stderr,
            )
    if answers_again != answers:
        failures += 1
        print("MISMATCH: warm-cache pass differs from cold pass", file=sys.stderr)
    store_hits = service.cache.stats.store_hits
    if store_hits < len(requests):
        failures += 1
        print(
            f"STORE INEFFECTIVE: {store_hits} store hits over "
            f"{len(requests)} cold requests (every miss must resolve "
            f"from the store)",
            file=sys.stderr,
        )
    parse_calls = parse_call_count() - parses_before
    if parse_calls != 0:
        failures += 1
        print(
            f"PARSE IN STORE-BACKED SERVING: {parse_calls} parse_html "
            f"calls during load+serve (must be 0)",
            file=sys.stderr,
        )
    synthesis_calls = synthesis_call_count() - calls_before
    if synthesis_calls != 0:
        failures += 1
        print(
            f"SYNTHESIS IN SERVING PATH: {synthesis_calls} synthesize() "
            f"calls during load+serve (must be 0)",
            file=sys.stderr,
        )
    print(json.dumps(service.stats.as_dict(), indent=2))
    print(json.dumps({"page_cache": service.cache.stats.as_dict()}, indent=2))
    if failures:
        print(f"corpus smoke FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print(
        f"corpus smoke OK: {len(requests)} requests x2 passes, "
        f"{store_hits} store hits, 0 parse calls, 0 synthesis calls"
    )
    return 0


#: Routed-answer expectations written by ``routing-export`` next to the
#: manifest, keyed by task id.
ROUTING_FILE = "routing.json"

#: CorpusAnswer fields compared across processes and against the
#: exhaustive scan ("routed" itself necessarily differs between paths).
ROUTING_KEYS = (
    "answer", "fingerprint", "url", "score", "consensus_loss",
    "support", "candidates",
)


def run_routing_export(
    out_dir: Path, n_pages: int, n_train: int, top_k: int
) -> int:
    """``corpus-export`` plus the inverted routing index + expectations.

    Builds the store and its ``.idx`` sibling, then records each task's
    routed :class:`~repro.retrieval.router.CorpusAnswer` so the fresh-
    process ``routing-serve`` phase can demand bit-identical answers and
    provenance.
    """
    status = run_corpus_export(out_dir, n_pages, n_train)
    if status:
        return status
    from ..retrieval.index import build_corpus_index

    store_path = out_dir / CORPUS_FILE
    report = build_corpus_index(str(store_path))
    print(json.dumps({"corpus_index": report}, indent=2))
    manifest = read_artifact(str(out_dir / MANIFEST))
    routing: dict = {"top_k": top_k, "tasks": {}}
    with QAService(jobs=1, store=str(store_path)) as service:
        for entry in manifest["tasks"]:
            service.register(entry["task_id"], str(out_dir / entry["artifact"]))
            answer = service.ask_corpus(entry["task_id"], top_k=top_k)
            routing["tasks"][entry["task_id"]] = answer.as_dict()
            print(
                f"routed {entry['task_id']}: {answer.url} "
                f"support={answer.support}/{len(answer.candidates)}"
            )
    write_artifact(str(out_dir / ROUTING_FILE), routing)
    return 0


def run_routing_serve(out_dir: Path, jobs: int, max_batch: int) -> int:
    """Route and answer from the index in a fresh process.

    Three bars on top of the recorded expectations: zero ``parse_html``
    calls (candidates rehydrate from store planes), zero synthesis
    calls (artifacts only), and routed ≡ exhaustive — the top-k answer,
    provenance and candidate ranking must be bit-identical to a full
    scan of every store page, re-proving the equivalence contract in
    the serving process itself.
    """
    parses_before = parse_call_count()
    calls_before = synthesis_call_count()
    manifest = read_artifact(str(out_dir / MANIFEST))
    routing = read_artifact(str(out_dir / ROUTING_FILE))
    top_k = int(routing["top_k"])
    failures = 0
    with QAService(
        jobs=jobs, max_batch=max_batch, store=str(out_dir / CORPUS_FILE)
    ) as service:
        for entry in manifest["tasks"]:
            task_id = entry["task_id"]
            service.register(task_id, str(out_dir / entry["artifact"]))
            routed = service.ask_corpus(task_id, top_k=top_k)
            exhaustive = service.ask_corpus(
                task_id, top_k=top_k, exhaustive=True
            )
            got, reference = routed.as_dict(), exhaustive.as_dict()
            expected = routing["tasks"][task_id]
            for key in ROUTING_KEYS:
                if got[key] != reference[key]:
                    failures += 1
                    print(
                        f"ROUTED != EXHAUSTIVE for {task_id}.{key}: "
                        f"{got[key]!r} vs {reference[key]!r}",
                        file=sys.stderr,
                    )
                if got[key] != expected[key]:
                    failures += 1
                    print(
                        f"MISMATCH vs export for {task_id}.{key}: "
                        f"got {got[key]!r}, expected {expected[key]!r}",
                        file=sys.stderr,
                    )
            if not routed.ok:
                failures += 1
                print(f"NO ANSWER routed for {task_id}", file=sys.stderr)
    parse_calls = parse_call_count() - parses_before
    if parse_calls != 0:
        failures += 1
        print(
            f"PARSE IN ROUTED SERVING: {parse_calls} parse_html calls "
            f"(must be 0: candidates come from store planes)",
            file=sys.stderr,
        )
    synthesis_calls = synthesis_call_count() - calls_before
    if synthesis_calls != 0:
        failures += 1
        print(
            f"SYNTHESIS IN ROUTED SERVING: {synthesis_calls} synthesize() "
            f"calls (must be 0)",
            file=sys.stderr,
        )
    if failures:
        print(f"routing smoke FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print(
        f"routing smoke OK: {len(manifest['tasks'])} routes answered from "
        f"the index at top_k={top_k}, routed == exhaustive == export, "
        f"0 parse calls, 0 synthesis calls"
    )
    return 0


def run_routing_update(out_dir: Path) -> int:
    """Verify the index tracks a live store update (`repro corpus update`).

    Run after mutating the store: the index's recorded store generation
    must match the store's, at least one index generation must have been
    published, and — the strong form of "postings reflect the new
    generation" — every live page's postings must equal a fresh
    :func:`~repro.retrieval.index.page_postings` pass over its current
    store text.  Finishes with a routed-vs-exhaustive pass over the
    updated corpus.
    """
    from ..retrieval.index import index_path, open_corpus_index, page_postings, page_text
    from ..webtree.store import open_store

    store_path = out_dir / CORPUS_FILE
    store = open_store(str(store_path))
    reader = open_corpus_index(index_path(str(store_path)))
    failures = 0
    if reader.store_generation != store.generation:
        failures += 1
        print(
            f"STALE INDEX: store generation {store.generation} vs index's "
            f"recorded {reader.store_generation}",
            file=sys.stderr,
        )
    if reader.generation < 1:
        failures += 1
        print(
            f"NO NEW GENERATION: index generation {reader.generation} "
            f"(an update must have published >= 1)",
            file=sys.stderr,
        )
    store_fps = sorted(store.fingerprints())
    if sorted(reader.fingerprints()) != store_fps:
        failures += 1
        print("PAGE SET DIVERGED between store and index", file=sys.stderr)
    idf = reader.idf()
    stale_pages = 0
    for fingerprint in store_fps:
        page, _ = store.load(fingerprint)
        if reader.postings_for(fingerprint) != page_postings(page_text(page), idf):
            stale_pages += 1
    if stale_pages:
        failures += 1
        print(
            f"STALE POSTINGS: {stale_pages}/{len(store_fps)} pages' index "
            f"postings differ from their current store text",
            file=sys.stderr,
        )
    manifest = read_artifact(str(out_dir / MANIFEST))
    routing = read_artifact(str(out_dir / ROUTING_FILE))
    top_k = int(routing["top_k"])
    with QAService(jobs=1, store=str(store_path)) as service:
        for entry in manifest["tasks"]:
            task_id = entry["task_id"]
            service.register(task_id, str(out_dir / entry["artifact"]))
            routed = service.ask_corpus(task_id, top_k=top_k)
            exhaustive = service.ask_corpus(
                task_id, top_k=top_k, exhaustive=True
            )
            got, reference = routed.as_dict(), exhaustive.as_dict()
            diverged = [
                key for key in ROUTING_KEYS if got[key] != reference[key]
            ]
            if diverged:
                failures += 1
                print(
                    f"ROUTED != EXHAUSTIVE after update for {task_id}: "
                    f"{', '.join(diverged)}",
                    file=sys.stderr,
                )
    if failures:
        print(
            f"routing update smoke FAILED: {failures} problem(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"routing update smoke OK: index generation {reader.generation} "
        f"covers store generation {store.generation}; "
        f"{len(store_fps)} pages' postings current; routed == exhaustive"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="phase", required=True)
    export = sub.add_parser("export", help="fit tasks and write artifacts+pages")
    export.add_argument("--dir", type=Path, required=True)
    export.add_argument("--pages", type=int, default=8)
    export.add_argument("--train", type=int, default=3)
    serve = sub.add_parser("serve", help="load artifacts and serve in-process")
    serve.add_argument("--dir", type=Path, required=True)
    serve.add_argument("--jobs", type=int, default=2)
    serve.add_argument("--max-batch", type=int, default=8)
    corpus_export = sub.add_parser(
        "corpus-export", help="export plus build a columnar corpus store"
    )
    corpus_export.add_argument("--dir", type=Path, required=True)
    corpus_export.add_argument("--pages", type=int, default=8)
    corpus_export.add_argument("--train", type=int, default=3)
    corpus_serve = sub.add_parser(
        "corpus-serve", help="serve from the store: 0 parse calls allowed"
    )
    corpus_serve.add_argument("--dir", type=Path, required=True)
    corpus_serve.add_argument("--jobs", type=int, default=2)
    corpus_serve.add_argument("--max-batch", type=int, default=8)
    routing_export = sub.add_parser(
        "routing-export",
        help="corpus-export plus the routing index and expected answers",
    )
    routing_export.add_argument("--dir", type=Path, required=True)
    routing_export.add_argument("--pages", type=int, default=8)
    routing_export.add_argument("--train", type=int, default=3)
    routing_export.add_argument("--top-k", type=int, default=8)
    routing_serve = sub.add_parser(
        "routing-serve",
        help="route+answer from the index in a fresh process: 0 parse, "
        "0 synthesis, routed == exhaustive == export",
    )
    routing_serve.add_argument("--dir", type=Path, required=True)
    routing_serve.add_argument("--jobs", type=int, default=2)
    routing_serve.add_argument("--max-batch", type=int, default=8)
    routing_update = sub.add_parser(
        "routing-update",
        help="after `repro corpus update`: assert the index covers the "
        "new store generation with current postings",
    )
    routing_update.add_argument("--dir", type=Path, required=True)
    args = parser.parse_args(argv)
    if args.phase == "export":
        return run_export(args.dir, args.pages, args.train)
    if args.phase == "corpus-export":
        return run_corpus_export(args.dir, args.pages, args.train)
    if args.phase == "corpus-serve":
        return run_corpus_serve(args.dir, args.jobs, args.max_batch)
    if args.phase == "routing-export":
        return run_routing_export(args.dir, args.pages, args.train, args.top_k)
    if args.phase == "routing-serve":
        return run_routing_serve(args.dir, args.jobs, args.max_batch)
    if args.phase == "routing-update":
        return run_routing_update(args.dir)
    return run_serve(args.dir, args.jobs, args.max_batch)


if __name__ == "__main__":
    sys.exit(main())
