"""The paper's webpage tree representation (Definition 3.1).

A webpage is a tree ``(N, E, n0)`` where each node is a triple
``(id, text, type)`` with ``type ∈ {list, table, none}``.  An edge
``(n, n')`` means the text of ``n`` is the *header* for the text of
``n'`` on the rendered page — this is NOT the DOM: it is the nesting
structure a human reader perceives (Figure 4 of the paper).
"""

from __future__ import annotations

import enum
import hashlib
from typing import Callable, Iterator, Optional


class NodeType(enum.Enum):
    """Structural flavour of a tree node (Definition 3.1)."""

    NONE = "none"
    LIST = "list"
    TABLE = "table"


class PageNode:
    """One node of the webpage tree.

    Attributes mirror the paper's ``(id, text, type)`` triple; ``children``
    and ``parent`` encode the edge relation.
    """

    __slots__ = ("node_id", "text", "node_type", "children", "parent", "sibling_pos")

    def __init__(
        self,
        node_id: int,
        text: str,
        node_type: NodeType = NodeType.NONE,
    ) -> None:
        self.node_id = node_id
        self.text = text
        self.node_type = node_type
        self.children: list[PageNode] = []
        self.parent: Optional[PageNode] = None
        self.sibling_pos = 0

    # -- construction ---------------------------------------------------------

    def add_child(self, child: "PageNode") -> "PageNode":
        child.parent = self
        child.sibling_pos = len(self.children)
        self.children.append(child)
        return child

    # -- structure queries ------------------------------------------------------

    def is_leaf(self) -> bool:
        """True when this node has no children (``isLeaf`` in the DSL)."""
        return not self.children

    def is_elem(self) -> bool:
        """True when this node is a list/table *element* (``isElem``).

        In the DSL an "element" node is a child of a list or table node —
        i.e. a list item or a table row.
        """
        return self.parent is not None and self.parent.node_type is not NodeType.NONE

    def iter_subtree(self) -> Iterator["PageNode"]:
        """All nodes of this subtree in pre-order, self first."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def descendants(self) -> Iterator["PageNode"]:
        """Proper descendants of this node in pre-order."""
        for child in self.children:
            yield from child.iter_subtree()

    def leaves(self) -> list["PageNode"]:
        """Leaf nodes of this subtree in document order."""
        return [n for n in self.iter_subtree() if n.is_leaf()]

    def ancestors(self) -> Iterator["PageNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        return sum(1 for _ in self.ancestors())

    def child_index(self) -> int:
        """Position of this node among its siblings (0 for the root).

        O(1): the position is recorded by :meth:`add_child` instead of
        being rediscovered with a linear ``list.index`` scan.
        """
        return self.sibling_pos

    # -- text queries ------------------------------------------------------------

    def subtree_text(self, separator: str = " ") -> str:
        """Text of this node and all descendants, joined in document order.

        This is the ``b = true`` variant of the DSL's ``matchText``.
        """
        fragments = [n.text for n in self.iter_subtree() if n.text]
        return separator.join(fragments)

    def find(self, predicate: Callable[["PageNode"], bool]) -> list["PageNode"]:
        """All subtree nodes satisfying ``predicate``, in document order."""
        return [n for n in self.iter_subtree() if predicate(n)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.text if len(self.text) <= 32 else self.text[:29] + "..."
        return f"PageNode({self.node_id}, {self.node_type.value}, {label!r})"


class WebPage:
    """A parsed webpage: the tree plus identity metadata.

    ``url`` is an opaque identifier (the synthetic corpus uses stable fake
    URLs); ``root`` is node ``n0`` of Definition 3.1.
    """

    __slots__ = ("url", "root", "_index", "_fingerprint")

    def __init__(self, root: PageNode, url: str = "") -> None:
        self.root = root
        self.url = url
        self._index = None
        self._fingerprint: Optional[str] = None

    def __getstate__(self) -> dict:
        # Derived state (the evaluation index and its memo tables) holds
        # references to model bundles and caches; it is cheap to rebuild
        # and must not ride along when pages cross process or disk
        # boundaries (runtime process pools, saved synthesis sessions).
        return {"url": self.url, "root": self.root}

    def __setstate__(self, state: dict) -> None:
        self.root = state["root"]
        self.url = state["url"]
        self._index = None
        self._fingerprint = None

    def index(self):
        """The page's cached evaluation index (see :mod:`repro.webtree.index`).

        Built lazily on first use; the tree must not be mutated afterwards
        without calling :meth:`invalidate_index`.
        """
        if self._index is None:
            from .index import PageIndex

            self._index = PageIndex(self)
        return self._index

    def invalidate_index(self) -> None:
        """Drop the cached index (and id map) after a tree mutation."""
        self._index = None
        self._fingerprint = None

    def content_fingerprint(self) -> str:
        """Stable hex digest of the page's full content.

        Covers the url and every node's ``(id, text, type)`` triple plus
        the tree shape, so two pages fingerprint equal iff they are
        content-identical — unlike ``id()``, the digest survives
        re-parsing, pickling and process boundaries.  Synthesis sessions
        key their block caches on it (see
        :mod:`repro.synthesis.session`).  Cached until
        :meth:`invalidate_index`.
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            url = self.url.encode("utf-8")
            hasher.update(f"{len(url)}\x1f".encode("utf-8"))
            hasher.update(url)
            for node in self.root.iter_subtree():
                # Variable-length fields (url above, text here) are
                # length-prefixed so content containing the separator
                # bytes cannot forge a record boundary — the encoding
                # stays injective for arbitrary content.
                text = node.text.encode("utf-8")
                record = (
                    f"\x1e{node.node_id}\x1f{node.node_type.value}"
                    f"\x1f{len(node.children)}\x1f{len(text)}\x1f"
                )
                hasher.update(record.encode("utf-8"))
                hasher.update(text)
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def nodes(self) -> list[PageNode]:
        """All nodes in document order."""
        return list(self.root.iter_subtree())

    def node_by_id(self, node_id: int) -> Optional[PageNode]:
        """The node carrying ``node_id`` (first in pre-order), or ``None``.

        O(1) via the index's cached id→node map.  Like every index-backed
        query, the answer reflects the tree as of the last
        :meth:`index` build — call :meth:`invalidate_index` after
        mutating the tree.
        """
        return self.index().node_by_id(node_id)

    def size(self) -> int:
        return sum(1 for _ in self.root.iter_subtree())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WebPage(url={self.url!r}, nodes={self.size()})"
