"""Render a webpage tree back to minimal, canonical HTML.

The inverse direction of :mod:`~repro.webtree.builder`: a
:class:`~repro.webtree.node.WebPage` becomes an HTML document whose
re-parse yields an isomorphic tree (same texts, types and nesting).  Used
to export in-memory corpora, to snapshot pages in bug reports, and as a
round-trip oracle in tests.

Sections become ``<h1>``–``<h6>`` by depth (deeper levels fall back to
bold labels); list/table nodes become ``<ul>``/``<table>``.
"""

from __future__ import annotations

import html as html_escape

from .node import NodeType, PageNode, WebPage

_MAX_HEADING = 6


def _esc(text: str) -> str:
    return html_escape.escape(text, quote=False)


def _render_structured(node: PageNode, parts: list[str]) -> None:
    if node.node_type is NodeType.LIST:
        parts.append("<ul>")
        for child in node.children:
            parts.append(f"<li>{_esc(child.text)}</li>")
            for grandchild_part in _nested_parts(child):
                parts.append(grandchild_part)
        parts.append("</ul>")
    else:  # TABLE
        parts.append("<table>")
        for row in node.children:
            cells = row.text.split(" | ")
            parts.append(
                "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in cells) + "</tr>"
            )
        parts.append("</table>")


def _nested_parts(item: PageNode) -> list[str]:
    """Sub-lists of a list item (nested-list support)."""
    if item.node_type is NodeType.NONE or not item.children:
        return []
    parts: list[str] = []
    _render_structured(item, parts)
    return parts


def _render_section(node: PageNode, depth: int, parts: list[str]) -> None:
    if node.node_type is not NodeType.NONE:
        if node.text:
            parts.append(_heading(node.text, depth))
        _render_structured(node, parts)
        return
    if node.text:
        parts.append(_heading(node.text, depth))
    _render_children(node.children, depth + 1, parts)


def _render_children(children: list[PageNode], depth: int, parts: list[str]) -> None:
    """Render sibling nodes, keeping leaves at their own nesting level.

    In header-nesting HTML a plain ``<p>`` always belongs to the most
    recently opened section.  So a leaf sibling is a ``<p>`` only while no
    sibling *section* has been opened yet; afterwards it must be emitted
    as a (childless) heading of the same level, or the re-parse would nest
    it under the previous sibling.
    """
    section_open = False
    for child in children:
        if child.node_type is not NodeType.NONE or child.children:
            _render_section(child, depth, parts)
            section_open = True
        elif section_open:
            parts.append(_heading(child.text, depth))
        else:
            parts.append(f"<p>{_esc(child.text)}</p>")


def _heading(text: str, depth: int) -> str:
    level = min(depth + 1, _MAX_HEADING)
    if depth + 1 > _MAX_HEADING:
        return f"<p><b>{_esc(text)}</b></p>"
    return f"<h{level}>{_esc(text)}</h{level}>"


def page_to_html(page: WebPage) -> str:
    """Serialize ``page`` to an HTML document.

    Round-trip guarantee (tested): parsing the output with
    :func:`~repro.webtree.builder.page_from_html` reproduces the same
    node texts, node types and parent/child structure.
    """
    parts: list[str] = [
        "<html><head><title>", _esc(page.root.text), "</title></head><body>",
        f"<h1>{_esc(page.root.text)}</h1>",
    ]
    if page.root.node_type is not NodeType.NONE:
        _render_structured(page.root, parts)
    else:
        _render_children(page.root.children, 1, parts)
    parts.append("</body></html>")
    return "".join(parts)
