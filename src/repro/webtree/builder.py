"""DOM → webpage-tree conversion (paper Section 3 and Section 7 "Parsing").

The conversion follows the header hierarchy of the rendered page:

* ``<h1>`` becomes the root; each ``<h(i+1)>`` opens a section nested under
  the closest open ``<hi>`` section.
* Label-like blocks (``<dt>``, or a paragraph consisting solely of
  ``<b>``/``<strong>`` text) act as pseudo-headers one level below all real
  headers — matching sections such as "PhD students" in Figure 2 that are
  bold text rather than ``<h*>`` tags.
* Plain text blocks become leaf children of the innermost open section.
* ``<ul>``/``<ol>`` items become children of the section node they follow;
  that node's type is set to ``list`` (Figure 4, nodes 7 and 11).  A list
  that appears after other content gets an anonymous list node instead.
* ``<table>`` rows become children of a ``table``-typed node; cell texts
  within a row are joined with `` | ``.
"""

from __future__ import annotations

from ..html.dom import Document, Element, TextNode
from ..html.parser import parse_html
from ..html.text import INLINE_ELEMENTS, collapse_whitespace
from .node import NodeType, PageNode, WebPage

_HEADING_LEVEL = {f"h{i}": i for i in range(1, 7)}
#: Pseudo-heading level assigned to <dt> / bold-paragraph labels.
_LABEL_LEVEL = 7
#: Block containers we recurse into without emitting a node.
_TRANSPARENT = frozenset(
    {
        "html", "body", "div", "section", "article", "main", "header",
        "footer", "aside", "nav", "center", "font", "dl", "dd", "figure",
        "details", "summary", "fieldset", "form", "blockquote",
    }
)
#: Block elements whose collapsed text becomes a leaf node.
_TEXT_BLOCKS = frozenset({"p", "pre", "address", "caption", "figcaption"})


class _TreeAssembler:
    """Stateful walker that assembles the webpage tree from a DOM."""

    def __init__(self) -> None:
        self._next_id = 0
        self.root = self._make_node("")
        # Stack of (level, node); root sits at level 0.
        self._stack: list[tuple[int, PageNode]] = [(0, self.root)]

    # -- node bookkeeping ---------------------------------------------------

    def _make_node(self, text: str, node_type: NodeType = NodeType.NONE) -> PageNode:
        node = PageNode(self._next_id, text, node_type)
        self._next_id += 1
        return node

    @property
    def _top(self) -> PageNode:
        return self._stack[-1][1]

    # -- section / content events ----------------------------------------------

    def open_section(self, level: int, text: str) -> None:
        if not text:
            return
        # The first <h1> on a bare page *is* the root (Figure 4, node 0).
        if level == 1 and not self.root.text and not self.root.children:
            self.root.text = text
            self._stack = [(1, self.root)]
            return
        while len(self._stack) > 1 and self._stack[-1][0] >= level:
            self._stack.pop()
        node = self._make_node(text)
        self._top.add_child(node)
        self._stack.append((level, node))

    def add_leaf(self, text: str) -> None:
        if text:
            self._top.add_child(self._make_node(text))

    def _structured_target(self, node_type: NodeType) -> PageNode:
        """The node that should own structured (list/table) children.

        If the innermost section node has no content yet and no structural
        type, the structure belongs to that header (Figure 4: the
        "Professional Service" header node has type list).  Otherwise an
        anonymous structural node is inserted.
        """
        target = self._top
        if target.node_type is NodeType.NONE and not target.children and target.text:
            target.node_type = node_type
            return target
        anon = self._make_node("", node_type)
        target.add_child(anon)
        return anon

    def add_list(self, element: Element) -> None:
        self._attach_list(element, self._structured_target(NodeType.LIST))

    def _attach_list(self, element: Element, target: PageNode) -> None:
        for item in element.child_elements():
            if item.tag != "li":
                continue
            nested = [c for c in item.child_elements() if c.tag in ("ul", "ol")]
            own_text = collapse_whitespace(
                " ".join(_text_excluding(item, frozenset({"ul", "ol"})))
            )
            item_node = self._make_node(own_text)
            target.add_child(item_node)
            for sub in nested:
                item_node.node_type = NodeType.LIST
                self._attach_list(sub, item_node)

    def add_table(self, element: Element) -> None:
        target = self._structured_target(NodeType.TABLE)
        for row in element.find_all("tr"):
            cells = [
                collapse_whitespace(cell.text_content())
                for cell in row.child_elements()
                if cell.tag in ("td", "th")
            ]
            row_text = " | ".join(c for c in cells if c)
            if row_text:
                target.add_child(self._make_node(row_text))


def _text_excluding(element: Element, skip_tags: frozenset[str]) -> list[str]:
    """Text fragments under ``element`` skipping subtrees in ``skip_tags``."""
    fragments: list[str] = []
    for child in element.children:
        if isinstance(child, TextNode):
            fragments.append(child.text)
        elif isinstance(child, Element) and child.tag not in skip_tags:
            fragments.extend(_text_excluding(child, skip_tags))
    return fragments


def _is_label_paragraph(element: Element) -> bool:
    """True for a block whose visible text is entirely bold/strong."""
    bold_text: list[str] = []
    for child in element.children:
        if isinstance(child, TextNode):
            if not child.text.isspace() and child.text.strip():
                return False
        elif isinstance(child, Element):
            if child.tag in ("b", "strong"):
                bold_text.append(child.text_content())
            elif child.tag == "br":
                continue
            else:
                return False
    return bool(collapse_whitespace(" ".join(bold_text)))


def _walk(element: Element, assembler: _TreeAssembler) -> None:
    inline_run: list[str] = []

    def flush_inline() -> None:
        text = collapse_whitespace(" ".join(inline_run))
        inline_run.clear()
        assembler.add_leaf(text)

    for child in element.children:
        if isinstance(child, TextNode):
            if child.text.strip():
                inline_run.append(child.text)
            continue
        if not isinstance(child, Element):
            continue
        tag = child.tag
        if tag in INLINE_ELEMENTS:
            if tag in ("b", "strong") and not inline_run and _is_label_paragraph(element):
                # Handled at the parent level; fall through to inline text.
                pass
            inline_run.append(child.text_content())
            continue
        flush_inline()
        level = _HEADING_LEVEL.get(tag)
        if level is not None:
            assembler.open_section(level, collapse_whitespace(child.text_content()))
        elif tag in ("ul", "ol"):
            assembler.add_list(child)
        elif tag == "table":
            assembler.add_table(child)
        elif tag == "dt":
            assembler.open_section(
                _LABEL_LEVEL, collapse_whitespace(child.text_content())
            )
        elif tag in _TEXT_BLOCKS:
            if _is_label_paragraph(child):
                assembler.open_section(
                    _LABEL_LEVEL, collapse_whitespace(child.text_content())
                )
            else:
                assembler.add_leaf(collapse_whitespace(child.text_content()))
        elif tag in _TRANSPARENT:
            _walk(child, assembler)
        elif tag in ("head", "title", "img", "br", "hr", "iframe", "svg"):
            continue
        else:
            # Unknown block container: recurse, treating it as transparent.
            _walk(child, assembler)
    flush_inline()


def build_tree(document: Document, url: str = "") -> WebPage:
    """Convert a parsed DOM document into the paper's tree representation."""
    assembler = _TreeAssembler()
    body = document.body or document
    _walk(body, assembler)
    if not assembler.root.text:
        assembler.root.text = document.title
    return WebPage(assembler.root, url=url)


def page_from_html(
    markup: str,
    url: str = "",
    max_depth: int | None = None,
    max_nodes: int | None = None,
) -> WebPage:
    """Parse HTML markup directly into a :class:`WebPage`.

    This is the main entry point used throughout the system:

    >>> page = page_from_html("<h1>Jane</h1><h2>Students</h2><p>Bob</p>")
    >>> page.root.text
    'Jane'
    >>> [c.text for c in page.root.children]
    ['Students']

    ``max_depth`` / ``max_nodes`` are the serving ingest guards
    (forwarded to :func:`~repro.html.parser.parse_html`); with the
    ``None`` defaults the parse is unbounded, as before.  Callers that
    need to know whether a cap fired use the two-step
    ``parse_html`` + ``build_tree`` path and read ``document.truncated``.
    """
    return build_tree(parse_html(markup, max_depth, max_nodes), url=url)
