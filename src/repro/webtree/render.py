"""Debug rendering of webpage trees (mirrors the paper's Figure 4)."""

from __future__ import annotations

from .node import PageNode, WebPage


def render_tree(page: WebPage, max_text: int = 48) -> str:
    """An indented, human-readable dump of the tree.

    Each line shows ``id, type: text`` like the node boxes in Figure 4.

    >>> from repro.webtree.builder import page_from_html
    >>> print(render_tree(page_from_html("<h1>A</h1><p>b</p>")))
    0, none: A
      1, none: b
    """
    lines: list[str] = []

    def visit(node: PageNode, indent: int) -> None:
        text = node.text if len(node.text) <= max_text else node.text[: max_text - 3] + "..."
        lines.append(f"{'  ' * indent}{node.node_id}, {node.node_type.value}: {text}")
        for child in node.children:
            visit(child, indent + 1)

    visit(page.root, 0)
    return "\n".join(lines)


def tree_stats(page: WebPage) -> dict[str, int]:
    """Simple structural statistics used by tests and the labeling module."""
    nodes = page.nodes()
    return {
        "nodes": len(nodes),
        "leaves": sum(1 for n in nodes if n.is_leaf()),
        "lists": sum(1 for n in nodes if n.node_type.value == "list"),
        "tables": sum(1 for n in nodes if n.node_type.value == "table"),
        "max_depth": max((n.depth() for n in nodes), default=0),
    }
