"""Structural paths over webpage trees.

These index-based paths are the tree analogue of the XPath steps used by
wrapper-induction systems.  They power (a) the HYB baseline, which
generalizes exact paths across training pages, and (b) the page-clustering
features of the interactive labeling module (paper Section 7).
"""

from __future__ import annotations

from typing import Optional

from .node import NodeType, PageNode, WebPage


def node_path(node: PageNode) -> tuple[int, ...]:
    """Child-index path from the root down to ``node`` (root = ``()``).

    >>> from repro.webtree.builder import page_from_html
    >>> page = page_from_html("<h1>A</h1><h2>S</h2><p>x</p><p>y</p>")
    >>> leaf = page.root.children[0].children[1]
    >>> node_path(leaf)
    (0, 1)
    """
    indices: list[int] = []
    current = node
    while current.parent is not None:
        indices.append(current.child_index())
        current = current.parent
    return tuple(reversed(indices))


def typed_path(node: PageNode) -> tuple[str, ...]:
    """Path of node types from root to ``node`` (inclusive).

    Unlike :func:`node_path` this abstracts away positions, capturing only
    the list/table/none flavour along the way.
    """
    chain = [node.node_type.value]
    chain.extend(a.node_type.value for a in node.ancestors())
    return tuple(reversed(chain))


def resolve_path(page: WebPage, path: tuple[int, ...]) -> Optional[PageNode]:
    """Follow a child-index path from the root; ``None`` if out of range."""
    node = page.root
    for index in path:
        if index < 0 or index >= len(node.children):
            return None
        node = node.children[index]
    return node


def depth_signature(page: WebPage) -> tuple[int, ...]:
    """Multiset-as-sorted-tuple of leaf depths; a cheap layout fingerprint."""
    return tuple(sorted(leaf.depth() for leaf in page.root.leaves()))


def structural_signature(page: WebPage) -> tuple[tuple[str, int], ...]:
    """Counts of node types at each depth, a richer layout fingerprint.

    Used by the labeling module to cluster pages that *look* alike.
    """
    counts: dict[tuple[str, int], int] = {}
    for node in page.nodes():
        key = (node.node_type.value, node.depth())
        counts[key] = counts.get(key, 0) + 1
    return tuple(sorted(counts.items()))


def list_sections(page: WebPage) -> list[PageNode]:
    """All list- or table-typed nodes of the page, in document order."""
    return [n for n in page.nodes() if n.node_type is not NodeType.NONE]
