"""Disk-backed columnar store for indexed webpage trees.

``PageIndex`` is already a pre/post "XPath accelerator"-style window
encoding in parallel arrays: pre-order ranks with ``exit``/``parent``/
``depth`` planes and rank-bitset masks.  This module persists exactly
those planes, so a corpus is parsed **once** and every later process
rehydrates pages straight from the planes — no HTML tokenizing, no
tree walk, no Euler tour.

On-disk layout (store-format file, little-endian)::

    header   b"RPWSTORE" + u32 version + u32 flags            (16 bytes)
    block*   one per page, at manifest-recorded offsets:
               node plane   n × NODE_DTYPE  (exit/parent/depth i4,
                            node_id i8, node_type u1 — packed, 21 B)
               text offsets (n+1) × u8      (*character* offsets)
               text blob    UTF-8           (all node texts, one run)
               leaf bits    ceil(n/8)       (leaf_mask, little-endian)
               elem bits    ceil(n/8)       (elem_mask, little-endian)
    manifest JSON: fingerprint → {url, degraded, n, offset, text_bytes}
    footer   u64 manifest_offset + u64 manifest_len + b"RPWSEND1"

The manifest key is the serving layer's raw-bytes ``page_fingerprint``
(sha256 over url + raw HTML), so a store lookup needs **no parse** —
hashing the input answers "is this page already indexed?".  The same
property is the invalidation rule: any byte change to the HTML (or the
url namespace) changes the key, so a stale entry can never be returned;
re-ingesting the changed document simply misses and parses.

Generational updates
--------------------

A published store is immutable, but it is not frozen: mutations land in
**generations**.  ``<path>`` is the base file; each committed update
generation appends a segment file ``<path>.seg-<G>`` (itself a complete
store-format file) and atomically swaps the sidecar manifest
``<path>.gen``::

    {"format": 1, "generation": G,
     "segments": ["<base>.seg-1", ...],     # applied in order
     "removed": ["<fingerprint>", ...]}     # hidden everywhere

Later segments shadow earlier files; ``removed`` hides fingerprints in
every file (re-adding a fingerprint drops it from ``removed`` — content
addressing guarantees the surviving bytes are the right ones).  With no
``.gen`` file the base alone is generation 0, so every pre-generational
store opens unchanged.

The publish ordering is the crash-safety argument:

1. segment blocks stream into ``<path>.seg-<G>.tmp``; finalize fsyncs
   and ``os.replace``\\ s it to ``<path>.seg-<G>``;
2. the new ``.gen`` manifest is written to ``<path>.gen.tmp``, fsynced,
   and ``os.replace``\\ d over ``<path>.gen``;
3. the directory is fsynced (best effort) so the renames are durable.

A published manifest therefore only ever references fully-published
files, and a crash at *any* byte boundary of steps 1–2 leaves either
the previous ``.gen`` (previous generation, fully intact) or the new
one (new generation, fully intact) — never a torn hybrid.  Orphan
segments and stale ``*.tmp`` files from interrupted updates are inert
(readers never open unreferenced files) and are deleted by
:func:`collect_garbage`.  :func:`compact_store` folds all live pages
back into a fresh base (replacing the base *before* publishing the
manifest that drops the segments, so a crash between the two is safe —
the old manifest over the new base still resolves every live page to
identical bytes).  One writer at a time: updates, compaction and GC
assume a single updating process, while any number of readers may hold
older generations mapped — ``os.replace``/``unlink`` never disturb an
open ``np.memmap``, and :meth:`CorpusStoreReader.reload` swaps a reader
to the newest generation without invalidating pages already loaded.

Readers map each file with ``np.memmap`` and slice plane views out of
it zero-copy; N worker processes opening one store share the read-only
pages through the OS page cache.  The numeric planes are converted to
Python lists at page-load time (the rank bitsets are arbitrary-
precision ints, and ``1 << numpy_int`` overflows), which is the only
materialization the load path pays besides decoding the text blob.

Truncated or corrupt *published* files fail loudly: every structural
check (magic, version, footer, manifest bounds, block bounds, text
encoding, generation manifest shape) raises
:class:`~repro.core.errors.IngestError` instead of serving garbage.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from typing import Iterator, Optional

import numpy as np

from ..core.errors import IngestError
from .index import PageIndex
from .node import NodeType, PageNode, WebPage

MAGIC = b"RPWSTORE"
FOOTER_MAGIC = b"RPWSEND1"
VERSION = 1

#: Format tag of the ``.gen`` generation manifest sidecar.
GEN_FORMAT = 1

_HEADER = struct.Struct("<8sII")
_FOOTER = struct.Struct("<QQ8s")

#: One row per pre-order rank; packed (align=False) so row r of a page
#: with block offset o lives at byte o + 21*r regardless of platform.
NODE_DTYPE = np.dtype(
    [
        ("exit", "<i4"),
        ("parent", "<i4"),
        ("depth", "<i4"),
        ("node_id", "<i8"),
        ("node_type", "u1"),
    ],
    align=False,
)

OFFSET_DTYPE = np.dtype("<u8")

_TYPE_CODE = {NodeType.NONE: 0, NodeType.LIST: 1, NodeType.TABLE: 2}
_TYPE_BY_CODE = {code: node_type for node_type, code in _TYPE_CODE.items()}


def _corrupt(path: str, reason: str) -> IngestError:
    return IngestError(f"corpus store {path!r} is unreadable: {reason}")


def _fsync_dir(path: str) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _publish_bytes(path: str, payload: bytes) -> None:
    """Atomically publish ``payload`` at ``path`` (tmp → fsync → replace)."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path)


class CorpusStoreWriter:
    """Streaming store builder: pages in, one atomic file out.

    Usage::

        with CorpusStoreWriter(path) as writer:
            for html, url in corpus:
                outcome = ingest_page(html, url, ...)
                writer.add_page(outcome.fingerprint, outcome.page,
                                degraded=outcome.degraded)
        # __exit__ finalizes (atomic rename); an exception aborts and
        # removes the temp file instead.

    Pages stream straight to disk — the writer holds one page's planes
    at a time plus the (small) manifest, so corpus size is bounded by
    disk, not RAM.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._tmp_path = self.path + ".tmp"
        self._file = open(self._tmp_path, "wb")
        self._file.write(_HEADER.pack(MAGIC, VERSION, 0))
        self._offset = _HEADER.size
        self._manifest: dict[str, dict] = {}
        self._closed = False

    def __enter__(self) -> "CorpusStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            self.abort()

    def __len__(self) -> int:
        return len(self._manifest)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._manifest

    def add_page(
        self, fingerprint: str, page: WebPage, degraded: bool = False
    ) -> bool:
        """Serialize one indexed page under ``fingerprint``.

        Returns False (and writes nothing) when the fingerprint is
        already present — re-ingesting a known page is a no-op, matching
        the cache semantics of the serving layer.
        """
        if self._closed:
            raise ValueError("writer is closed")
        if fingerprint in self._manifest:
            return False
        index = page.index()
        nodes = index.nodes
        size = len(nodes)
        plane = np.empty(size, dtype=NODE_DTYPE)
        plane["exit"] = index.exit
        plane["parent"] = index.parent
        plane["depth"] = index.depth
        try:
            plane["node_id"] = [node.node_id for node in nodes]
        except OverflowError as exc:
            raise ValueError(
                f"page {page.url!r} has a node_id outside int64"
            ) from exc
        plane["node_type"] = [_TYPE_CODE[node.node_type] for node in nodes]
        offsets = np.zeros(size + 1, dtype=OFFSET_DTYPE)
        np.cumsum(
            [len(text) for text in index.texts], out=offsets[1:]
        )
        # surrogatepass: node text is arbitrary Python str (hostile HTML
        # can smuggle lone surrogates through the parser); the reader
        # decodes with the same handler, so any str round-trips exactly.
        blob = "".join(index.texts).encode("utf-8", "surrogatepass")
        mask_bytes = (size + 7) // 8
        write = self._file.write
        written = write(plane.tobytes())
        written += write(offsets.tobytes())
        written += write(blob)
        written += write(index.leaf_mask.to_bytes(mask_bytes, "little"))
        written += write(index.elem_mask.to_bytes(mask_bytes, "little"))
        self._manifest[fingerprint] = {
            "url": page.url,
            "degraded": bool(degraded),
            "n": size,
            "offset": self._offset,
            "text_bytes": len(blob),
        }
        self._offset += written
        return True

    def finalize(self) -> None:
        """Write manifest + footer, fsync, and atomically publish."""
        if self._closed:
            return
        payload = json.dumps(
            {"pages": self._manifest}, ensure_ascii=False, sort_keys=True
        ).encode("utf-8")
        self._file.write(payload)
        self._file.write(_FOOTER.pack(self._offset, len(payload), FOOTER_MAGIC))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True
        os.replace(self._tmp_path, self.path)
        _fsync_dir(self.path)

    def abort(self) -> None:
        """Discard everything written; the published path is untouched."""
        if self._closed:
            return
        self._file.close()
        self._closed = True
        try:
            os.unlink(self._tmp_path)
        except OSError:
            pass


def _block_length(size: int, text_bytes: int) -> int:
    return (
        size * NODE_DTYPE.itemsize
        + (size + 1) * OFFSET_DTYPE.itemsize
        + text_bytes
        + 2 * ((size + 7) // 8)
    )


class _StoreFile:
    """One validated, memmapped store-format file (base or segment)."""

    __slots__ = ("path", "raw", "view", "pages")

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        try:
            raw = np.memmap(self.path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise _corrupt(self.path, str(exc)) from exc
        total = raw.size
        if total < _HEADER.size + _FOOTER.size:
            raise _corrupt(self.path, f"file too short ({total} bytes)")
        magic, version, _flags = _HEADER.unpack(
            raw[: _HEADER.size].tobytes()
        )
        if magic != MAGIC:
            raise _corrupt(self.path, "bad magic (not a corpus store)")
        if version != VERSION:
            raise _corrupt(self.path, f"unsupported version {version}")
        manifest_offset, manifest_len, footer_magic = _FOOTER.unpack(
            raw[total - _FOOTER.size :].tobytes()
        )
        if footer_magic != FOOTER_MAGIC:
            raise _corrupt(
                self.path, "bad footer magic (truncated or corrupt)"
            )
        if manifest_offset + manifest_len + _FOOTER.size != total:
            raise _corrupt(self.path, "manifest bounds do not match file size")
        try:
            manifest = json.loads(
                raw[manifest_offset : manifest_offset + manifest_len]
                .tobytes()
                .decode("utf-8")
            )
            pages = manifest["pages"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise _corrupt(self.path, f"manifest unreadable: {exc}") from exc
        for fingerprint, entry in pages.items():
            try:
                size = entry["n"]
                offset = entry["offset"]
                text_bytes = entry["text_bytes"]
                entry["url"], entry["degraded"]
            except (TypeError, KeyError) as exc:
                raise _corrupt(
                    self.path, f"manifest entry {fingerprint[:12]} malformed"
                ) from exc
            if (
                size < 1
                or offset < _HEADER.size
                or offset + _block_length(size, text_bytes) > manifest_offset
            ):
                raise _corrupt(
                    self.path,
                    f"page block {fingerprint[:12]} out of bounds",
                )
        self.raw = raw
        # Plain memoryview over the mapping: per-load byte reads (text
        # blob, bitsets) skip np.memmap.__getitem__/__array_finalize__
        # overhead, which dominates small-page loads.
        self.view = memoryview(raw)
        self.pages = pages

    def load(self, fingerprint: str) -> "tuple[WebPage, bool]":
        """Rehydrate one page (with its index prebuilt) from the planes."""
        entry = self.pages[fingerprint]
        size = entry["n"]
        offset = entry["offset"]
        text_bytes = entry["text_bytes"]
        raw = self.raw
        view = self.view
        plane = np.frombuffer(raw, dtype=NODE_DTYPE, count=size, offset=offset)
        cursor = offset + size * NODE_DTYPE.itemsize
        char_offsets = np.frombuffer(
            raw, dtype=OFFSET_DTYPE, count=size + 1, offset=cursor
        ).tolist()
        cursor += (size + 1) * OFFSET_DTYPE.itemsize
        try:
            blob = str(
                view[cursor : cursor + text_bytes], "utf-8", "surrogatepass"
            )
        except UnicodeDecodeError as exc:
            raise _corrupt(
                self.path, f"text blob of {fingerprint[:12]} undecodable"
            ) from exc
        cursor += text_bytes
        mask_bytes = (size + 7) // 8
        leaf_mask = int.from_bytes(
            view[cursor : cursor + mask_bytes], "little"
        )
        cursor += mask_bytes
        elem_mask = int.from_bytes(
            view[cursor : cursor + mask_bytes], "little"
        )
        if char_offsets[0] != 0 or char_offsets[-1] != len(blob):
            raise _corrupt(
                self.path, f"text offsets of {fingerprint[:12]} inconsistent"
            )
        # Bitset arithmetic needs Python ints (`1 << numpy_int` would
        # overflow); .tolist() materializes each plane exactly once.
        exit_ = plane["exit"].tolist()
        parent = plane["parent"].tolist()
        depth = plane["depth"].tolist()
        node_ids = plane["node_id"].tolist()
        type_codes = plane["node_type"].tolist()
        texts = [
            blob[begin:end]
            for begin, end in zip(char_offsets, char_offsets[1:])
        ]
        nodes: list[PageNode] = []
        # PageNode.__init__ and add_child are inlined (slot stores only):
        # this loop is the hot center of store-backed cold serving.
        new_node = object.__new__
        node_type = _TYPE_BY_CODE
        append = nodes.append
        rank = 0
        try:
            for node_id, code, parent_rank, text in zip(
                node_ids, type_codes, parent, texts
            ):
                node = new_node(PageNode)
                node.node_id = node_id
                node.text = text
                node.node_type = node_type[code]
                node.children = []
                node.parent = None
                node.sibling_pos = 0
                if parent_rank >= 0:
                    # Pre-order guarantees parent[r] < r, so the parent
                    # object always exists already; sibling_pos is set
                    # exactly as add_child would.
                    top = nodes[parent_rank]
                    node.parent = top
                    node.sibling_pos = len(top.children)
                    top.children.append(node)
                elif rank != 0:
                    raise _corrupt(
                        self.path,
                        f"page {fingerprint[:12]} has multiple roots",
                    )
                append(node)
                rank += 1
        except (KeyError, IndexError) as exc:
            raise _corrupt(
                self.path, f"node plane of {fingerprint[:12]} inconsistent"
            ) from exc
        page = WebPage(nodes[0], url=entry["url"])
        page._index = PageIndex.from_planes(
            page, nodes, exit_, parent, depth, leaf_mask, elem_mask,
            texts=texts,
        )
        return page, entry["degraded"]


def _generation_path(path: str) -> str:
    return path + ".gen"


def _segment_path(path: str, generation: int) -> str:
    return f"{path}.seg-{generation}"


def _read_generation_manifest(path: str) -> dict:
    """The ``.gen`` sidecar as a dict; a synthetic generation 0 if absent."""
    gen_path = _generation_path(path)
    try:
        with open(gen_path, "rb") as handle:
            payload = handle.read()
    except FileNotFoundError:
        return {"format": GEN_FORMAT, "generation": 0,
                "segments": [], "removed": []}
    except OSError as exc:
        raise _corrupt(gen_path, str(exc)) from exc
    try:
        manifest = json.loads(payload.decode("utf-8"))
        if manifest["format"] != GEN_FORMAT:
            raise ValueError(f"unsupported format {manifest['format']!r}")
        manifest["generation"] = int(manifest["generation"])
        if manifest["generation"] < 0:
            raise ValueError("negative generation")
        segments = manifest["segments"]
        removed = manifest["removed"]
        if not isinstance(segments, list) or not all(
            isinstance(name, str) for name in segments
        ):
            raise ValueError("segments must be a list of file names")
        if not isinstance(removed, list) or not all(
            isinstance(fp, str) for fp in removed
        ):
            raise ValueError("removed must be a list of fingerprints")
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise _corrupt(gen_path, f"generation manifest unreadable: {exc}") from exc
    return manifest


def _open_generation(
    path: str,
) -> "tuple[int, list[_StoreFile], dict[str, _StoreFile], set[str]]":
    """Open the current generation: base + referenced segments, composed."""
    manifest = _read_generation_manifest(path)
    directory = os.path.dirname(os.path.abspath(path))
    files = [_StoreFile(path)]
    for name in manifest["segments"]:
        files.append(_StoreFile(os.path.join(directory, name)))
    removed = set(manifest["removed"])
    routing: dict[str, _StoreFile] = {}
    for store_file in files:  # later segments shadow earlier files
        for fingerprint in store_file.pages:
            routing[fingerprint] = store_file
    for fingerprint in removed:
        routing.pop(fingerprint, None)
    return manifest["generation"], files, routing, removed


class CorpusStoreReader:
    """Read-only memmap view of a corpus store (base + update segments).

    Cheap to open (header/footer/manifest validation; no page is read
    until :meth:`load`), safe to share across threads, and **picklable
    by path** — unpickling re-opens the memmaps in the receiving
    process, so a reader can ride initargs into ``TaskRunner`` process
    workers where all workers share the files through the OS page cache.

    :meth:`reload` swaps the reader to the newest published generation
    in place; pages loaded from the previous generation stay valid (the
    old mappings survive until the last loaded page drops them).
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._install(*_open_generation(self.path))

    def _install(
        self,
        generation: int,
        files: "list[_StoreFile]",
        routing: "dict[str, _StoreFile]",
        removed: "set[str]",
    ) -> None:
        self._generation = generation
        self._files = files
        self._pages = routing
        self._removed = removed

    # -- pickling (reopen by path) ------------------------------------------

    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._lock = threading.Lock()
        self._install(*_open_generation(self.path))

    # -- generations ---------------------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    def reload(self) -> bool:
        """Re-open the newest published generation.

        Returns True when the visible page set (or generation number)
        changed.  Pages already loaded are untouched: they hold their
        own references to the old mappings, which ``os.replace`` and
        ``unlink`` cannot disturb.  Safe to call concurrently with
        :meth:`load` — lookups read the routing table exactly once.
        """
        with self._lock:
            generation, files, routing, removed = _open_generation(self.path)
            changed = (
                generation != self._generation
                or routing.keys() != self._pages.keys()
            )
            self._install(generation, files, routing, removed)
            return changed

    # -- manifest queries ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._pages

    def fingerprints(self) -> Iterator[str]:
        return iter(self._pages)

    def entry(self, fingerprint: str) -> "Optional[dict]":
        """The live manifest entry for ``fingerprint`` (url etc.), if any."""
        store_file = self._pages.get(fingerprint)
        if store_file is None:
            return None
        return store_file.pages[fingerprint]

    def stat(self) -> dict:
        """Aggregate shape of the store, for `repro corpus stat`."""
        routing = self._pages
        entries = [
            store_file.pages[fingerprint]
            for fingerprint, store_file in routing.items()
        ]
        return {
            "path": self.path,
            "file_bytes": sum(
                int(store_file.raw.size) for store_file in self._files
            ),
            "pages": len(routing),
            "nodes": sum(entry["n"] for entry in entries),
            "text_bytes": sum(entry["text_bytes"] for entry in entries),
            "degraded_pages": sum(
                1 for entry in entries if entry["degraded"]
            ),
            "generation": self._generation,
            "segments": len(self._files) - 1,
            "removed_pages": len(self._removed),
        }

    # -- page loads ----------------------------------------------------------

    def get(self, fingerprint: str) -> "Optional[tuple[WebPage, bool]]":
        """``(page, degraded)`` for ``fingerprint``, or None if absent."""
        store_file = self._pages.get(fingerprint)
        if store_file is None:
            return None
        return store_file.load(fingerprint)

    def load(self, fingerprint: str) -> "tuple[WebPage, bool]":
        """Rehydrate one page (with its index prebuilt) from the planes."""
        return self._pages[fingerprint].load(fingerprint)


class CorpusStoreUpdater:
    """Crash-safe mutations to a published store, one generation at a time.

    Usage::

        with CorpusStoreUpdater(path) as updater:
            updater.remove(stale_fingerprint)
            updater.update(new_fingerprint, page)
        # __exit__ commits (publishes the next generation); an
        # exception aborts and removes the in-flight segment instead.

    :meth:`update` streams page blocks into ``<path>.seg-<G>.tmp``; no
    published file is touched until :meth:`commit`, which runs the
    two-step publish described in the module docstring (segment rename,
    then manifest rename).  A crash at any byte boundary leaves the
    previous generation fully openable.  One updater commits one
    generation; the instance is closed afterwards.  Single writer at a
    time — concurrent updaters would race the generation counter.
    """

    def __init__(self, path: str, *, create: bool = True) -> None:
        self.path = os.fspath(path)
        if not os.path.exists(self.path):
            if not create:
                raise _corrupt(self.path, "no store at path")
            CorpusStoreWriter(self.path).finalize()
        self._reader = CorpusStoreReader(self.path)
        self._base_generation = self._reader.generation
        self._segment_target = _segment_path(
            self.path, self._base_generation + 1
        )
        self._writer: "Optional[CorpusStoreWriter]" = None
        self._removed = set(self._reader._removed)
        self._added: set[str] = set()
        self._restored: set[str] = set()
        self._segment_published = False
        self._closed = False

    def __enter__(self) -> "CorpusStoreUpdater":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    @property
    def generation(self) -> int:
        """The generation this updater will publish (base + 1)."""
        return self._base_generation + 1

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("updater is closed")

    def _has_bytes(self, fingerprint: str) -> bool:
        """Whether any on-disk file already stores this fingerprint."""
        return any(
            fingerprint in store_file.pages
            for store_file in self._reader._files
        )

    def _dirty(self) -> bool:
        return bool(
            self._added
            or self._restored
            or self._removed != self._reader._removed
        )

    def update(
        self, fingerprint: str, page: WebPage, degraded: bool = False
    ) -> bool:
        """Stage ``page`` under ``fingerprint`` for the next generation.

        Returns False (writing nothing) when the fingerprint is already
        live — content addressing makes that a guaranteed no-op.  A
        fingerprint whose bytes exist but were removed is restored
        without rewriting (the stored bytes are identical by key).
        """
        self._check_open()
        if fingerprint in self._added or fingerprint in self._restored:
            return False
        if fingerprint not in self._removed and (
            fingerprint in self._reader or (
                self._writer is not None and fingerprint in self._writer
            )
        ):
            return False
        if self._has_bytes(fingerprint) or (
            self._writer is not None and fingerprint in self._writer
        ):
            self._restored.add(fingerprint)
            self._removed.discard(fingerprint)
            return True
        if self._writer is None:
            self._writer = CorpusStoreWriter(self._segment_target)
        self._writer.add_page(fingerprint, page, degraded=degraded)
        self._added.add(fingerprint)
        self._removed.discard(fingerprint)
        return True

    def remove(self, fingerprint: str) -> bool:
        """Stage removal of ``fingerprint``; False when not live."""
        self._check_open()
        staged = fingerprint in self._added or fingerprint in self._restored
        live = staged or (
            fingerprint not in self._removed
            and (
                self._has_bytes(fingerprint)
                or (self._writer is not None and fingerprint in self._writer)
            )
        )
        if not live:
            return False
        self._added.discard(fingerprint)
        self._restored.discard(fingerprint)
        self._removed.add(fingerprint)
        return True

    def publish_segment(self) -> None:
        """Step 1 of the publish: atomically rename the segment file."""
        self._check_open()
        if self._segment_published or self._writer is None:
            return
        if len(self._writer) == 0:
            self._writer.abort()
            self._writer = None
            return
        self._writer.finalize()
        self._segment_published = True

    def publish_manifest(self) -> int:
        """Step 2 of the publish: atomically swap the ``.gen`` manifest."""
        self._check_open()
        segments = list(self._reader._files[1:])
        names = [os.path.basename(store_file.path) for store_file in segments]
        if self._segment_published:
            names.append(os.path.basename(self._segment_target))
        generation = self._base_generation + 1
        payload = json.dumps(
            {
                "format": GEN_FORMAT,
                "generation": generation,
                "segments": names,
                "removed": sorted(self._removed),
            },
            ensure_ascii=False,
            sort_keys=True,
        ).encode("utf-8")
        _publish_bytes(_generation_path(self.path), payload)
        self._closed = True
        return generation

    def commit(self) -> int:
        """Publish all staged mutations; returns the live generation.

        With nothing staged this is a no-op returning the unchanged
        generation.
        """
        self._check_open()
        if not self._dirty():
            self.abort()
            return self._base_generation
        self.publish_segment()
        return self.publish_manifest()

    def abort(self) -> None:
        """Discard staged mutations; published files are untouched."""
        if self._closed:
            return
        if self._writer is not None and not self._segment_published:
            self._writer.abort()
        self._closed = True

    def abandon(self) -> None:
        """Simulate a crash mid-update (tests/chaos): drop all in-flight
        state, leaving any partially written segment tmp on disk."""
        if self._closed:
            return
        if self._writer is not None and not self._writer._closed:
            self._writer._file.close()
            self._writer._closed = True
        self._closed = True


def collect_garbage(path: str) -> "list[str]":
    """Delete generation debris not referenced by the current manifest.

    Removes orphan segments (published but never referenced — a crash
    between the two publish steps) and stale ``*.tmp`` files from
    interrupted writes.  Returns the deleted paths.  Safe with respect
    to live readers: only unreferenced files are touched, and unlink
    never disturbs an open memmap.  Assumes the single-writer rule (an
    updater running in another process could lose its in-flight tmp).
    """
    path = os.fspath(path)
    manifest = _read_generation_manifest(path)
    referenced = set(manifest["segments"])
    directory = os.path.dirname(os.path.abspath(path)) or "."
    base = os.path.basename(path)
    deleted: list[str] = []
    for name in sorted(os.listdir(directory)):
        if not name.startswith(base + "."):
            continue
        stale_tmp = name.endswith(".tmp") and (
            name == base + ".tmp"
            or name == base + ".gen.tmp"
            or name.startswith(base + ".seg-")
        )
        orphan_segment = (
            name.startswith(base + ".seg-")
            and not name.endswith(".tmp")
            and name not in referenced
        )
        if not (stale_tmp or orphan_segment):
            continue
        target = os.path.join(directory, name)
        try:
            os.unlink(target)
        except OSError:
            continue
        deleted.append(target)
    return deleted


def compact_store(path: str) -> dict:
    """Fold all live pages into a fresh base and drop the segments.

    Publishes the result as the next generation (empty ``segments`` and
    ``removed``), then garbage-collects the stale files.  The base file
    is replaced *before* the manifest swap: a crash between the two
    leaves the old manifest over the new base, which still resolves
    every live fingerprint to identical bytes (content addressing) and
    hides every removed one (they are simply absent from the new base).
    """
    path = os.fspath(path)
    reader = CorpusStoreReader(path)
    tmp = path + ".tmp"
    manifest_pages: dict[str, dict] = {}
    with open(tmp, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION, 0))
        offset = _HEADER.size
        for fingerprint, store_file in reader._pages.items():
            entry = store_file.pages[fingerprint]
            length = _block_length(entry["n"], entry["text_bytes"])
            handle.write(
                store_file.view[entry["offset"] : entry["offset"] + length]
            )
            moved = dict(entry)
            moved["offset"] = offset
            manifest_pages[fingerprint] = moved
            offset += length
        payload = json.dumps(
            {"pages": manifest_pages}, ensure_ascii=False, sort_keys=True
        ).encode("utf-8")
        handle.write(payload)
        handle.write(_FOOTER.pack(offset, len(payload), FOOTER_MAGIC))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path)
    generation = reader.generation + 1
    _publish_bytes(
        _generation_path(path),
        json.dumps(
            {
                "format": GEN_FORMAT,
                "generation": generation,
                "segments": [],
                "removed": [],
            },
            ensure_ascii=False,
            sort_keys=True,
        ).encode("utf-8"),
    )
    collected = collect_garbage(path)
    return {
        "path": path,
        "generation": generation,
        "pages": len(manifest_pages),
        "file_bytes": os.path.getsize(path),
        "collected": collected,
    }


def open_store(path: str) -> CorpusStoreReader:
    """Open an existing corpus store (validating its structure)."""
    return CorpusStoreReader(path)


# Public aliases of the publish/generation primitives, shared with the
# inverted-index sidecar (``repro.retrieval.index``) which replicates
# this module's crash-safety discipline — atomic tmp→fsync→replace
# publishes and an append-only ``.gen`` segment manifest — over its own
# postings file format.  One implementation, one set of invariants.
publish_bytes = _publish_bytes
fsync_dir = _fsync_dir
generation_path = _generation_path
segment_path = _segment_path
read_generation_manifest = _read_generation_manifest
