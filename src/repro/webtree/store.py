"""Disk-backed columnar store for indexed webpage trees.

``PageIndex`` is already a pre/post "XPath accelerator"-style window
encoding in parallel arrays: pre-order ranks with ``exit``/``parent``/
``depth`` planes and rank-bitset masks.  This module persists exactly
those planes, so a corpus is parsed **once** and every later process
rehydrates pages straight from the planes — no HTML tokenizing, no
tree walk, no Euler tour.

On-disk layout (single file, little-endian)::

    header   b"RPWSTORE" + u32 version + u32 flags            (16 bytes)
    block*   one per page, at manifest-recorded offsets:
               node plane   n × NODE_DTYPE  (exit/parent/depth i4,
                            node_id i8, node_type u1 — packed, 21 B)
               text offsets (n+1) × u8      (*character* offsets)
               text blob    UTF-8           (all node texts, one run)
               leaf bits    ceil(n/8)       (leaf_mask, little-endian)
               elem bits    ceil(n/8)       (elem_mask, little-endian)
    manifest JSON: fingerprint → {url, degraded, n, offset, text_bytes}
    footer   u64 manifest_offset + u64 manifest_len + b"RPWSEND1"

The manifest key is the serving layer's raw-bytes ``page_fingerprint``
(sha256 over url + raw HTML), so a store lookup needs **no parse** —
hashing the input answers "is this page already indexed?".  The same
property is the invalidation rule: any byte change to the HTML (or the
url namespace) changes the key, so a stale entry can never be returned;
re-ingesting the changed document simply misses and parses.

Readers map the file with ``np.memmap`` and slice plane views out of
it zero-copy; N worker processes opening one store share the read-only
pages through the OS page cache.  The numeric planes are converted to
Python lists at page-load time (the rank bitsets are arbitrary-
precision ints, and ``1 << numpy_int`` overflows), which is the only
materialization the load path pays besides decoding the text blob.

Truncated or corrupt files fail *loudly*: every structural check
(magic, version, footer, manifest bounds, block bounds, text encoding)
raises :class:`~repro.core.errors.IngestError` instead of serving
garbage.  The writer streams blocks to ``<path>.tmp`` and atomically
renames on :meth:`CorpusStoreWriter.finalize`, so a crashed build can
never leave a half-written file at the published path.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from typing import Iterator, Optional

import numpy as np

from ..core.errors import IngestError
from .index import PageIndex
from .node import NodeType, PageNode, WebPage

MAGIC = b"RPWSTORE"
FOOTER_MAGIC = b"RPWSEND1"
VERSION = 1

_HEADER = struct.Struct("<8sII")
_FOOTER = struct.Struct("<QQ8s")

#: One row per pre-order rank; packed (align=False) so row r of a page
#: with block offset o lives at byte o + 21*r regardless of platform.
NODE_DTYPE = np.dtype(
    [
        ("exit", "<i4"),
        ("parent", "<i4"),
        ("depth", "<i4"),
        ("node_id", "<i8"),
        ("node_type", "u1"),
    ],
    align=False,
)

OFFSET_DTYPE = np.dtype("<u8")

_TYPE_CODE = {NodeType.NONE: 0, NodeType.LIST: 1, NodeType.TABLE: 2}
_TYPE_BY_CODE = {code: node_type for node_type, code in _TYPE_CODE.items()}


def _corrupt(path: str, reason: str) -> IngestError:
    return IngestError(f"corpus store {path!r} is unreadable: {reason}")


class CorpusStoreWriter:
    """Streaming store builder: pages in, one atomic file out.

    Usage::

        with CorpusStoreWriter(path) as writer:
            for html, url in corpus:
                outcome = ingest_page(html, url, ...)
                writer.add_page(outcome.fingerprint, outcome.page,
                                degraded=outcome.degraded)
        # __exit__ finalizes (atomic rename); an exception aborts and
        # removes the temp file instead.

    Pages stream straight to disk — the writer holds one page's planes
    at a time plus the (small) manifest, so corpus size is bounded by
    disk, not RAM.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._tmp_path = self.path + ".tmp"
        self._file = open(self._tmp_path, "wb")
        self._file.write(_HEADER.pack(MAGIC, VERSION, 0))
        self._offset = _HEADER.size
        self._manifest: dict[str, dict] = {}
        self._closed = False

    def __enter__(self) -> "CorpusStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            self.abort()

    def __len__(self) -> int:
        return len(self._manifest)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._manifest

    def add_page(
        self, fingerprint: str, page: WebPage, degraded: bool = False
    ) -> bool:
        """Serialize one indexed page under ``fingerprint``.

        Returns False (and writes nothing) when the fingerprint is
        already present — re-ingesting a known page is a no-op, matching
        the cache semantics of the serving layer.
        """
        if self._closed:
            raise ValueError("writer is closed")
        if fingerprint in self._manifest:
            return False
        index = page.index()
        nodes = index.nodes
        size = len(nodes)
        plane = np.empty(size, dtype=NODE_DTYPE)
        plane["exit"] = index.exit
        plane["parent"] = index.parent
        plane["depth"] = index.depth
        try:
            plane["node_id"] = [node.node_id for node in nodes]
        except OverflowError as exc:
            raise ValueError(
                f"page {page.url!r} has a node_id outside int64"
            ) from exc
        plane["node_type"] = [_TYPE_CODE[node.node_type] for node in nodes]
        offsets = np.zeros(size + 1, dtype=OFFSET_DTYPE)
        np.cumsum(
            [len(text) for text in index.texts], out=offsets[1:]
        )
        # surrogatepass: node text is arbitrary Python str (hostile HTML
        # can smuggle lone surrogates through the parser); the reader
        # decodes with the same handler, so any str round-trips exactly.
        blob = "".join(index.texts).encode("utf-8", "surrogatepass")
        mask_bytes = (size + 7) // 8
        write = self._file.write
        written = write(plane.tobytes())
        written += write(offsets.tobytes())
        written += write(blob)
        written += write(index.leaf_mask.to_bytes(mask_bytes, "little"))
        written += write(index.elem_mask.to_bytes(mask_bytes, "little"))
        self._manifest[fingerprint] = {
            "url": page.url,
            "degraded": bool(degraded),
            "n": size,
            "offset": self._offset,
            "text_bytes": len(blob),
        }
        self._offset += written
        return True

    def finalize(self) -> None:
        """Write manifest + footer, fsync, and atomically publish."""
        if self._closed:
            return
        payload = json.dumps(
            {"pages": self._manifest}, ensure_ascii=False, sort_keys=True
        ).encode("utf-8")
        self._file.write(payload)
        self._file.write(_FOOTER.pack(self._offset, len(payload), FOOTER_MAGIC))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True
        os.replace(self._tmp_path, self.path)

    def abort(self) -> None:
        """Discard everything written; the published path is untouched."""
        if self._closed:
            return
        self._file.close()
        self._closed = True
        try:
            os.unlink(self._tmp_path)
        except OSError:
            pass


def _block_length(size: int, text_bytes: int) -> int:
    return (
        size * NODE_DTYPE.itemsize
        + (size + 1) * OFFSET_DTYPE.itemsize
        + text_bytes
        + 2 * ((size + 7) // 8)
    )


class CorpusStoreReader:
    """Read-only memmap view of a corpus store file.

    Cheap to open (header/footer/manifest validation; no page is read
    until :meth:`load`), safe to share across threads, and **picklable
    by path** — unpickling re-opens the memmap in the receiving process,
    so a reader can ride initargs into ``TaskRunner`` process workers
    where all workers share the file through the OS page cache.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._open()

    def _open(self) -> None:
        try:
            raw = np.memmap(self.path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise _corrupt(self.path, str(exc)) from exc
        total = raw.size
        if total < _HEADER.size + _FOOTER.size:
            raise _corrupt(self.path, f"file too short ({total} bytes)")
        magic, version, _flags = _HEADER.unpack(
            raw[: _HEADER.size].tobytes()
        )
        if magic != MAGIC:
            raise _corrupt(self.path, "bad magic (not a corpus store)")
        if version != VERSION:
            raise _corrupt(self.path, f"unsupported version {version}")
        manifest_offset, manifest_len, footer_magic = _FOOTER.unpack(
            raw[total - _FOOTER.size :].tobytes()
        )
        if footer_magic != FOOTER_MAGIC:
            raise _corrupt(
                self.path, "bad footer magic (truncated or corrupt)"
            )
        if manifest_offset + manifest_len + _FOOTER.size != total:
            raise _corrupt(self.path, "manifest bounds do not match file size")
        try:
            manifest = json.loads(
                raw[manifest_offset : manifest_offset + manifest_len]
                .tobytes()
                .decode("utf-8")
            )
            pages = manifest["pages"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise _corrupt(self.path, f"manifest unreadable: {exc}") from exc
        for fingerprint, entry in pages.items():
            try:
                size = entry["n"]
                offset = entry["offset"]
                text_bytes = entry["text_bytes"]
                entry["url"], entry["degraded"]
            except (TypeError, KeyError) as exc:
                raise _corrupt(
                    self.path, f"manifest entry {fingerprint[:12]} malformed"
                ) from exc
            if (
                size < 1
                or offset < _HEADER.size
                or offset + _block_length(size, text_bytes) > manifest_offset
            ):
                raise _corrupt(
                    self.path,
                    f"page block {fingerprint[:12]} out of bounds",
                )
        self._raw = raw
        # Plain memoryview over the mapping: per-load byte reads (text
        # blob, bitsets) skip np.memmap.__getitem__/__array_finalize__
        # overhead, which dominates small-page loads.
        self._view = memoryview(raw)
        self._pages = pages

    # -- pickling (reopen by path) ------------------------------------------

    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._lock = threading.Lock()
        self._open()

    # -- manifest queries ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._pages

    def fingerprints(self) -> Iterator[str]:
        return iter(self._pages)

    def stat(self) -> dict:
        """Aggregate shape of the store, for `repro corpus stat`."""
        total_nodes = sum(entry["n"] for entry in self._pages.values())
        total_text = sum(entry["text_bytes"] for entry in self._pages.values())
        return {
            "path": self.path,
            "file_bytes": int(self._raw.size),
            "pages": len(self._pages),
            "nodes": total_nodes,
            "text_bytes": total_text,
            "degraded_pages": sum(
                1 for entry in self._pages.values() if entry["degraded"]
            ),
        }

    # -- page loads ----------------------------------------------------------

    def get(self, fingerprint: str) -> "Optional[tuple[WebPage, bool]]":
        """``(page, degraded)`` for ``fingerprint``, or None if absent."""
        if fingerprint not in self._pages:
            return None
        return self.load(fingerprint)

    def load(self, fingerprint: str) -> "tuple[WebPage, bool]":
        """Rehydrate one page (with its index prebuilt) from the planes."""
        entry = self._pages[fingerprint]
        size = entry["n"]
        offset = entry["offset"]
        text_bytes = entry["text_bytes"]
        raw = self._raw
        view = self._view
        plane = np.frombuffer(raw, dtype=NODE_DTYPE, count=size, offset=offset)
        cursor = offset + size * NODE_DTYPE.itemsize
        char_offsets = np.frombuffer(
            raw, dtype=OFFSET_DTYPE, count=size + 1, offset=cursor
        ).tolist()
        cursor += (size + 1) * OFFSET_DTYPE.itemsize
        try:
            blob = str(
                view[cursor : cursor + text_bytes], "utf-8", "surrogatepass"
            )
        except UnicodeDecodeError as exc:
            raise _corrupt(
                self.path, f"text blob of {fingerprint[:12]} undecodable"
            ) from exc
        cursor += text_bytes
        mask_bytes = (size + 7) // 8
        leaf_mask = int.from_bytes(
            view[cursor : cursor + mask_bytes], "little"
        )
        cursor += mask_bytes
        elem_mask = int.from_bytes(
            view[cursor : cursor + mask_bytes], "little"
        )
        if char_offsets[0] != 0 or char_offsets[-1] != len(blob):
            raise _corrupt(
                self.path, f"text offsets of {fingerprint[:12]} inconsistent"
            )
        # Bitset arithmetic needs Python ints (`1 << numpy_int` would
        # overflow); .tolist() materializes each plane exactly once.
        exit_ = plane["exit"].tolist()
        parent = plane["parent"].tolist()
        depth = plane["depth"].tolist()
        node_ids = plane["node_id"].tolist()
        type_codes = plane["node_type"].tolist()
        texts = [
            blob[begin:end]
            for begin, end in zip(char_offsets, char_offsets[1:])
        ]
        nodes: list[PageNode] = []
        # PageNode.__init__ and add_child are inlined (slot stores only):
        # this loop is the hot center of store-backed cold serving.
        new_node = object.__new__
        node_type = _TYPE_BY_CODE
        append = nodes.append
        rank = 0
        try:
            for node_id, code, parent_rank, text in zip(
                node_ids, type_codes, parent, texts
            ):
                node = new_node(PageNode)
                node.node_id = node_id
                node.text = text
                node.node_type = node_type[code]
                node.children = []
                node.parent = None
                node.sibling_pos = 0
                if parent_rank >= 0:
                    # Pre-order guarantees parent[r] < r, so the parent
                    # object always exists already; sibling_pos is set
                    # exactly as add_child would.
                    top = nodes[parent_rank]
                    node.parent = top
                    node.sibling_pos = len(top.children)
                    top.children.append(node)
                elif rank != 0:
                    raise _corrupt(
                        self.path,
                        f"page {fingerprint[:12]} has multiple roots",
                    )
                append(node)
                rank += 1
        except (KeyError, IndexError) as exc:
            raise _corrupt(
                self.path, f"node plane of {fingerprint[:12]} inconsistent"
            ) from exc
        page = WebPage(nodes[0], url=entry["url"])
        page._index = PageIndex.from_planes(
            page, nodes, exit_, parent, depth, leaf_mask, elem_mask,
            texts=texts,
        )
        return page, entry["degraded"]


def open_store(path: str) -> CorpusStoreReader:
    """Open an existing corpus store (validating its structure)."""
    return CorpusStoreReader(path)
