"""Per-page evaluation index: Euler-tour flattening + bitset node sets.

The synthesis loop (Figures 7–10) evaluates thousands of locators and
filters against the *same* webpage trees.  The object-graph interpreter
pays for that with Python generator traversals and repeated
``subtree_text`` joins on every query.  This module flattens a
:class:`~repro.webtree.node.WebPage` once into parallel arrays indexed
by **pre-order rank**:

* ``nodes[r]``   — the node with pre-order rank ``r`` (rank = Euler-tour
  entry time, so ranks are document order);
* ``exit[r]``    — the highest rank inside ``r``'s subtree, making the
  proper descendants of ``r`` the contiguous range ``r+1 .. exit[r]``;
* ``parent[r]`` / ``depth[r]`` — structural context in O(1);
* ``texts[r]`` / ``subtree_text(r)`` — node text and the lazily cached
  whole-subtree text (the ``b = true`` variant of ``matchText``).

Node *sets* are arbitrary-precision integers used as bitsets over ranks:
bit ``r`` set means "rank r is in the set".  Set algebra (``&``, ``|``,
``~`` within the page universe) replaces per-node predicate dispatch,
and ``descendants_mask`` is a two-shift range mask instead of a tree
walk.  :class:`~repro.dsl.eval.IndexedEvalContext` builds its whole
locator/filter semantics on these operations.

The index is built lazily by :meth:`WebPage.index` and cached on the
page.  It assumes the tree is frozen; callers that mutate a page after
indexing must call :meth:`WebPage.invalidate_index`.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional, Sequence

import numpy as np

from ..caching import BoundedLru
from .node import NodeType, PageNode, WebPage


def iter_ranks(mask: int) -> Iterator[int]:
    """Set bit positions of ``mask`` in increasing (document) order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of_flags(flags: np.ndarray) -> int:
    """Rank bitset from a boolean vector (``flags[r]`` → bit ``r``)."""
    if len(flags) == 0:
        return 0
    packed = np.packbits(np.asarray(flags, dtype=bool), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


class TextPlane:
    """Batched ``matchKeyword`` scores over every node text of one page.

    The plane asks the model bundle to score *all* node texts against a
    keyword set in one :meth:`~repro.nlp.models.NlpModels.keyword_similarity_batch`
    call (one embedding matmul per new ``(keywords, whole_subtree)``
    pair), caches the score vector, and derives threshold bitsets from
    it — so every further ``matchKeyword(K, t)`` filter over the page is
    one vector comparison, and repeats are one dict probe.

    Soundness: the plane only exists for model bundles whose
    ``match_keyword`` is a pure threshold over ``keyword_similarity``
    (``models.batch_keyword_planes``); the batched scores are
    bit-identical to the scalar path by construction, so the derived
    masks equal per-node evaluation exactly (pinned by the differential
    engine tests).
    """

    __slots__ = ("_index", "_models", "_scores", "_masks")

    def __init__(self, index: "PageIndex", models: object) -> None:
        self._index = index
        self._models = models
        self._scores: dict[tuple[tuple[str, ...], bool], np.ndarray] = {}
        self._masks: dict[tuple[tuple[str, ...], float, bool], int] = {}

    def scores(
        self, keywords: tuple[str, ...], whole_subtree: bool
    ) -> np.ndarray:
        """Similarity of every node's text (rank order) to ``keywords``."""
        key = (keywords, whole_subtree)
        cached = self._scores.get(key)
        if cached is None:
            index = self._index
            if whole_subtree:
                texts = [index.subtree_text(rank) for rank in range(len(index))]
            else:
                texts = index.texts
            cached = self._models.keyword_similarity_batch(texts, keywords)
            cached.setflags(write=False)
            self._scores[key] = cached
        return cached

    def match_mask(
        self, keywords: tuple[str, ...], threshold: float, whole_subtree: bool
    ) -> int:
        """Bitset of ranks whose text matches ``matchKeyword(K, t)``.

        Thresholds the cached score vector directly rather than calling
        ``models.match_keyword_batch`` so one scoring pass serves every
        threshold — equivalent exactly when ``match_keyword`` is a pure
        threshold over ``keyword_similarity``, which is what the
        ``batch_keyword_planes`` gate (checked by the eval layer before
        using a plane) asserts.  Impure bundles keep a correct public
        ``match_keyword_batch`` via their own override, but never reach
        this fast path.
        """
        key = (keywords, threshold, whole_subtree)
        cached = self._masks.get(key)
        if cached is None:
            cached = mask_of_flags(
                self.scores(keywords, whole_subtree) >= threshold
            )
            self._masks[key] = cached
        return cached

    def match_masks(
        self,
        keywords: tuple[str, ...],
        thresholds: Sequence[float],
        whole_subtree: bool,
    ) -> tuple[int, ...]:
        """:meth:`match_mask` for a whole threshold grid, one broadcast.

        The frontier synthesis loops expand sibling ``matchText``
        filters that differ only in threshold; this sweeps the cached
        score vector against all of them in a single vectorized compare
        (each row identical to the per-threshold mask, which stays the
        cache of record).
        """
        missing = [
            t for t in dict.fromkeys(thresholds)
            if (keywords, t, whole_subtree) not in self._masks
        ]
        if missing:
            scores = self.scores(keywords, whole_subtree)
            table = scores[None, :] >= np.asarray(missing, dtype=float)[:, None]
            for threshold, flags in zip(missing, table):
                self._masks[(keywords, threshold, whole_subtree)] = (
                    mask_of_flags(flags)
                )
        return tuple(
            self._masks[(keywords, t, whole_subtree)] for t in thresholds
        )


class _SharedEvalCache:
    """Memo tables shared by every eval context over one
    (page, question, keywords, models) quadruple.

    Hanging these off the index (rather than the context) means a fresh
    :class:`~repro.dsl.eval.EvalContext` for an already-analyzed page
    starts warm — the paper's footnote-6 memoization hoisted to page
    scope.  Keys are semantic inputs only, so sharing is sound for the
    pure model bundle.
    """

    __slots__ = (
        "pred_cache",
        "locator_cache",
        "locator_masks",
        "filter_bitsets",
        "extractor_cache",
        "kw_guard_best",
    )

    def __init__(self) -> None:
        #: (pred, text) -> bool
        self.pred_cache: dict = {}
        #: locator -> document-ordered tuple of PageNode
        self.locator_cache: dict = {}
        #: locator -> rank bitset
        self.locator_masks: dict = {}
        #: (pred, whole_subtree) -> [evaluated_mask, true_mask]
        self.filter_bitsets: dict = {}
        #: nodes -> {extractor -> Answer} (two-level, see EvalContext)
        self.extractor_cache: dict = {}
        #: locator -> best keyword similarity over its located texts
        #: (pure bundles only; backs the Sat/matchKeyword guard sweep)
        self.kw_guard_best: dict = {}


class PageIndex:
    """One-shot pre-order flattening of a webpage tree."""

    __slots__ = (
        "page",
        "nodes",
        "exit",
        "parent",
        "depth",
        "texts",
        "leaf_mask",
        "elem_mask",
        "all_mask",
        "_children_ranks",
        "_children_mask",
        "_rank_by_node",
        "_id_map",
        "_subtree_texts",
        "_shared_caches",
        "_text_planes",
        "_cache_lock",
    )

    def __init__(self, page: WebPage) -> None:
        self.page = page
        nodes: list[PageNode] = []
        parent: list[int] = []
        depth: list[int] = []
        children_ranks: list[list[int]] = []
        # Iterative pre-order walk; children are pushed reversed so they
        # pop left-to-right, keeping ranks in document order.
        stack: list[tuple[PageNode, int, int]] = [(page.root, -1, 0)]
        while stack:
            node, parent_rank, node_depth = stack.pop()
            rank = len(nodes)
            nodes.append(node)
            parent.append(parent_rank)
            depth.append(node_depth)
            children_ranks.append([])
            if parent_rank >= 0:
                children_ranks[parent_rank].append(rank)
            for child in reversed(node.children):
                stack.append((child, rank, node_depth + 1))

        size = len(nodes)
        # exit[r] = highest rank in r's subtree.  In reverse rank order a
        # node's last child (its highest-ranked child) is already done.
        exit_: list[int] = [0] * size
        for rank in range(size - 1, -1, -1):
            ranks = children_ranks[rank]
            exit_[rank] = exit_[ranks[-1]] if ranks else rank

        leaf_mask = 0
        elem_mask = 0
        children_mask: list[int] = [0] * size
        for rank, node in enumerate(nodes):
            if not node.children:
                leaf_mask |= 1 << rank
            parent_rank = parent[rank]
            if parent_rank >= 0:
                children_mask[parent_rank] |= 1 << rank
                if nodes[parent_rank].node_type is not NodeType.NONE:
                    elem_mask |= 1 << rank

        self.nodes = nodes
        self.exit = exit_
        self.parent = parent
        self.depth = depth
        self.texts = [node.text for node in nodes]
        self.leaf_mask = leaf_mask
        self.elem_mask = elem_mask
        self.all_mask = (1 << size) - 1
        self._children_ranks = children_ranks
        self._children_mask = children_mask
        # The node-identity and node-id lookup tables are derived lazily
        # (see `rank` / `node_by_id`): most pages are indexed for plane
        # queries only and never resolve individual nodes.
        self._rank_by_node = None
        self._id_map = None
        self._subtree_texts: list[Optional[str]] = [None] * size
        self._shared_caches = BoundedLru(self.MAX_SHARED_CACHES)
        self._text_planes = BoundedLru(self.MAX_SHARED_CACHES)
        # Serializes the read-modify-write merges into the shared
        # filter bitsets: parallel block synthesis (SynthesisConfig.jobs
        # > 1, thread backend) evaluates filters for the same page from
        # several workers, and `state |= bits` is a lost-update race
        # without it (the LRU tables above carry their own locks).
        self._cache_lock = threading.Lock()

    @classmethod
    def from_planes(
        cls,
        page: WebPage,
        nodes: list[PageNode],
        exit_: list[int],
        parent: list[int],
        depth: list[int],
        leaf_mask: int,
        elem_mask: int,
        texts: "Optional[list[str]]" = None,
    ) -> "PageIndex":
        """Rebuild an index from persisted planes, skipping the tree walk.

        ``nodes`` must be the pre-order node list and ``exit_`` /
        ``parent`` / ``depth`` / ``leaf_mask`` / ``elem_mask`` the planes
        a regular ``__init__`` build would have produced for ``page`` —
        the corpus store (:mod:`repro.webtree.store`) persists exactly
        those; callers that already sliced the text plane may pass it as
        ``texts`` to skip the re-gather.  All remaining derived tables
        (children ranks/masks, node lookup dicts) build lazily on first
        use, so rehydration itself touches nothing but the planes; the
        differential store tests pin every table of a rehydrated index
        against a fresh build.
        """
        index = object.__new__(cls)
        size = len(nodes)
        index.page = page
        index.nodes = nodes
        index.exit = exit_
        index.parent = parent
        index.depth = depth
        index.texts = (
            texts if texts is not None else [node.text for node in nodes]
        )
        index.leaf_mask = leaf_mask
        index.elem_mask = elem_mask
        index.all_mask = (1 << size) - 1
        index._children_ranks = None
        index._children_mask = None
        index._rank_by_node = None
        index._id_map = None
        index._subtree_texts = [None] * size
        index._shared_caches = BoundedLru(cls.MAX_SHARED_CACHES)
        index._text_planes = BoundedLru(cls.MAX_SHARED_CACHES)
        index._cache_lock = threading.Lock()
        return index

    def _build_children_tables(self) -> None:
        """Derive ``children_ranks`` / ``children_mask`` from ``parent``.

        Runs at most once per index, on first access through either
        property — plane-rehydrated indexes skip it entirely unless a
        program actually takes a child axis.  Guarded by ``_cache_lock``
        because cached pages are shared across pool workers.
        """
        with self._cache_lock:
            if self._children_ranks is not None:
                return
            size = len(self.nodes)
            children_ranks: list[list[int]] = [[] for _ in range(size)]
            children_mask: list[int] = [0] * size
            for rank, parent_rank in enumerate(self.parent):
                if parent_rank >= 0:
                    children_ranks[parent_rank].append(rank)
                    children_mask[parent_rank] |= 1 << rank
            self._children_mask = children_mask
            # Publish ranks last: it is the property guard.
            self._children_ranks = children_ranks

    @property
    def children_ranks(self) -> list[list[int]]:
        """Per-rank lists of child ranks, in document order."""
        ranks = self._children_ranks
        if ranks is None:
            self._build_children_tables()
            ranks = self._children_ranks
        return ranks

    @property
    def children_mask(self) -> list[int]:
        """Per-rank bitsets of direct children."""
        if self._children_ranks is None:
            self._build_children_tables()
        return self._children_mask

    # -- structure queries -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def rank(self, node: PageNode) -> int:
        """Pre-order rank of ``node``; KeyError for foreign nodes."""
        table = self._rank_by_node
        if table is None:
            # Benign race: concurrent builders produce identical dicts.
            table = {id(n): r for r, n in enumerate(self.nodes)}
            self._rank_by_node = table
        return table[id(node)]

    def node_by_id(self, node_id: int) -> Optional[PageNode]:
        """O(1) replacement for the old pre-order id scan."""
        id_map = self._id_map
        if id_map is None:
            id_map = {}
            for node in self.nodes:  # first occurrence wins, as before
                id_map.setdefault(node.node_id, node)
            self._id_map = id_map
        return id_map.get(node_id)

    def descendants_mask(self, rank: int) -> int:
        """Bitset of the proper descendants of ``rank``: the contiguous
        Euler-tour range ``rank+1 .. exit[rank]``."""
        return (1 << (self.exit[rank] + 1)) - (1 << (rank + 1))

    def subtree_mask(self, rank: int) -> int:
        """Bitset of ``rank`` plus its descendants."""
        return (1 << (self.exit[rank] + 1)) - (1 << rank)

    def nodes_of_mask(self, mask: int) -> tuple[PageNode, ...]:
        """The nodes of a bitset, in document order."""
        nodes = self.nodes
        return tuple(nodes[rank] for rank in iter_ranks(mask))

    # -- text queries ----------------------------------------------------------

    def subtree_text(self, rank: int) -> str:
        """Cached ``subtree_text`` of the node at ``rank``."""
        cached = self._subtree_texts[rank]
        if cached is None:
            fragments = self.texts[rank : self.exit[rank] + 1]
            cached = " ".join(t for t in fragments if t)
            self._subtree_texts[rank] = cached
        return cached

    # -- shared evaluation caches ----------------------------------------------

    #: Retained (question, keywords, models) cache entries per page.
    #: Pages can outlive many model bundles (the corpus generators are
    #: lru-cached for the whole process), so without a bound the per-page
    #: tables grow monotonically; LRU eviction keeps the working set.
    MAX_SHARED_CACHES = 8

    def shared_cache(
        self, question: str, keywords: tuple[str, ...], models: object
    ) -> _SharedEvalCache:
        """The memo tables for one (question, keywords, models) triple.

        ``models`` participates by identity; the cache holds a strong
        reference so a dead model bundle's id can never alias a live one.
        """
        return self._shared_caches.get_or_create(
            (question, keywords, models), _SharedEvalCache
        )

    def text_plane(self, models: object) -> TextPlane:
        """The page's :class:`TextPlane` for one model bundle.

        Keyed by bundle identity (held strongly, like
        :meth:`shared_cache`) and LRU-bounded the same way; score
        vectors inside the plane are keyed by keyword set, so one plane
        serves every question/threshold over the page.
        """
        return self._text_planes.get_or_create(
            id(models),
            lambda: TextPlane(self, models),
            # Guard against id() reuse after the original bundle died:
            # the plane pins its models, so a live entry's id is stable,
            # but a stale id hit must rebuild.
            validate=lambda plane: plane._models is models,
        )


def page_index(page: WebPage) -> PageIndex:
    """The cached :class:`PageIndex` of ``page`` (built on first use)."""
    return page.index()
