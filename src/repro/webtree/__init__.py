"""Webpage tree representation (paper Section 3).

Public surface:

- :class:`PageNode`, :class:`WebPage`, :class:`NodeType` — the tree model.
- :func:`page_from_html` / :func:`build_tree` — construction from HTML.
- :func:`render_tree` — Figure-4-style debug dump.
- :mod:`repro.webtree.paths` — structural paths and layout fingerprints.
- :class:`PageIndex` / :func:`page_index` — the Euler-tour evaluation
  index behind the indexed DSL engine (see DESIGN.md).
"""

from .builder import build_tree, page_from_html
from .html_out import page_to_html
from .index import PageIndex, iter_ranks, page_index
from .node import NodeType, PageNode, WebPage
from .paths import (
    depth_signature,
    list_sections,
    node_path,
    resolve_path,
    structural_signature,
    typed_path,
)
from .render import render_tree, tree_stats

__all__ = [
    "NodeType",
    "PageNode",
    "PageIndex",
    "WebPage",
    "page_index",
    "iter_ranks",
    "build_tree",
    "page_from_html",
    "page_to_html",
    "render_tree",
    "tree_stats",
    "node_path",
    "typed_path",
    "resolve_path",
    "depth_signature",
    "structural_signature",
    "list_sections",
]
