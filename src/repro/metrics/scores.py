"""Score containers and aggregation helpers for the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .tokens import token_prf


@dataclass(frozen=True)
class Score:
    """A (precision, recall, F1) triple."""

    precision: float
    recall: float
    f1: float

    @classmethod
    def of(cls, predicted: Iterable[str], expected: Iterable[str]) -> "Score":
        return cls(*token_prf(predicted, expected))

    def __add__(self, other: "Score") -> "Score":
        return Score(
            self.precision + other.precision,
            self.recall + other.recall,
            self.f1 + other.f1,
        )

    def scaled(self, factor: float) -> "Score":
        return Score(self.precision * factor, self.recall * factor, self.f1 * factor)


ZERO_SCORE = Score(0.0, 0.0, 0.0)


def mean_score(scores: Sequence[Score]) -> Score:
    """Component-wise mean; zero triple for an empty sequence."""
    if not scores:
        return ZERO_SCORE
    if len(scores) == 1:
        # Bit-identical to the general path (0.0 + x == x and
        # x * 1.0 == x for the non-negative finite components).
        return scores[0]
    total = ZERO_SCORE
    for score in scores:
        total = total + score
    return total.scaled(1.0 / len(scores))


def score_examples(
    pairs: Iterable[tuple[Iterable[str], Iterable[str]]]
) -> Score:
    """Macro-average of per-example scores over (predicted, gold) pairs."""
    return mean_score([Score.of(p, g) for p, g in pairs])


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def variance(values: Sequence[float]) -> float:
    """Population variance; 0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return sum((v - center) ** 2 for v in values) / len(values)


def stddev(values: Sequence[float]) -> float:
    return math.sqrt(variance(values))
