"""Token-level precision/recall/F1 (the paper's evaluation metric).

The paper scores an extraction against the gold labels at the granularity
of word tokens (footnote 1 and the Recall definition in Section 5).  A
predicted answer set and a gold answer set are each flattened into a
multiset of lower-cased word tokens; precision, recall and F1 are computed
on the multiset overlap.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Iterable

from ..nlp.tokenize import words


@lru_cache(maxsize=262144)
def _string_tokens(text: str) -> tuple[str, ...]:
    """Cached word tokens of one string; scoring retokenizes the same
    node texts millions of times during synthesis."""
    return tuple(words(text))


def answer_tokens(answers: Iterable[str]) -> Counter[str]:
    """Multiset of word tokens across all strings of an answer set.

    >>> sorted(answer_tokens(["Bob Smith", "Ann"]).elements())
    ['ann', 'bob', 'smith']
    """
    tokens: Counter[str] = Counter()
    for answer in answers:
        tokens.update(_string_tokens(answer))
    return tokens


def overlap(predicted: Counter[str], expected: Counter[str]) -> int:
    """Size of the multiset intersection."""
    return sum((predicted & expected).values())


def token_prf(
    predicted: Iterable[str], expected: Iterable[str]
) -> tuple[float, float, float]:
    """(precision, recall, F1) of predicted vs. gold answer strings.

    Conventions at the edges: empty-vs-empty is a perfect match; empty
    prediction against non-empty gold has recall 0; non-empty prediction
    against empty gold has precision 0.

    Memoized on the (predicted, expected) string tuples: extractor
    synthesis scores the same candidate outputs against the same gold
    sets across partitions, blocks and refits, and the multiset
    arithmetic dominates once evaluation itself is cached.

    >>> token_prf(["Bob Smith"], ["Bob Smith", "Ann"])
    (1.0, 0.6666666666666666, 0.8)
    """
    return _token_prf_cached(tuple(predicted), tuple(expected))


@lru_cache(maxsize=262144)
def _token_prf_cached(
    predicted: tuple[str, ...], expected: tuple[str, ...]
) -> tuple[float, float, float]:
    pred_tokens = answer_tokens(predicted)
    gold_tokens = answer_tokens(expected)
    n_pred = sum(pred_tokens.values())
    n_gold = sum(gold_tokens.values())
    if n_pred == 0 and n_gold == 0:
        return 1.0, 1.0, 1.0
    hits = overlap(pred_tokens, gold_tokens)
    precision = hits / n_pred if n_pred else 0.0
    recall = hits / n_gold if n_gold else 0.0
    if precision + recall == 0:
        return precision, recall, 0.0
    return precision, recall, 2 * precision * recall / (precision + recall)


def token_f1(predicted: Iterable[str], expected: Iterable[str]) -> float:
    """F1 component of :func:`token_prf`."""
    return token_prf(predicted, expected)[2]


def token_recall(predicted: Iterable[str], expected: Iterable[str]) -> float:
    """Recall component of :func:`token_prf` (drives UB pruning)."""
    return token_prf(predicted, expected)[1]
