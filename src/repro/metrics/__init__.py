"""Token-level evaluation metrics (paper footnote 1 and Section 8)."""

from .scores import ZERO_SCORE, Score, mean, mean_score, score_examples, stddev, variance
from .tokens import answer_tokens, overlap, token_f1, token_prf, token_recall

__all__ = [
    "Score",
    "ZERO_SCORE",
    "mean_score",
    "score_examples",
    "mean",
    "variance",
    "stddev",
    "answer_tokens",
    "overlap",
    "token_f1",
    "token_prf",
    "token_recall",
]
