"""Comparison baselines of the paper's evaluation (Section 8.1)."""

from .base import ExtractionTool
from .bertqa import BertQaBaseline, flatten_page
from .entextract import EntExtractBaseline, candidate_groups
from .hyb import WILDCARD, HybBaseline, PathProgram, generalize

__all__ = [
    "ExtractionTool",
    "BertQaBaseline",
    "flatten_page",
    "EntExtractBaseline",
    "candidate_groups",
    "HybBaseline",
    "PathProgram",
    "generalize",
    "WILDCARD",
]
