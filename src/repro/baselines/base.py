"""Common interface for the comparison baselines (paper Section 8.1).

Every tool — WebQA itself and the three baselines — is exposed through
the same two-phase protocol so the experiment harness can treat them
uniformly: ``fit`` on the (question, keywords, labeled pages) inputs the
tool consumes, then ``predict`` per test page.  Baselines that take fewer
inputs than WebQA simply ignore the extras, mirroring the paper's remark
that the comparison is not perfectly apples-to-apples.
"""

from __future__ import annotations

import abc

from ..nlp.models import NlpModels
from ..synthesis.examples import LabeledExample
from ..webtree.node import WebPage


class ExtractionTool(abc.ABC):
    """A tool that can answer one web-extraction task over many pages."""

    #: Display name used in experiment tables.
    name: str = "tool"

    @abc.abstractmethod
    def fit(
        self,
        question: str,
        keywords: tuple[str, ...],
        train: list[LabeledExample],
        unlabeled: list[WebPage],
        models: NlpModels,
    ) -> "ExtractionTool":
        """Prepare the tool for a task; returns ``self`` for chaining."""

    @abc.abstractmethod
    def predict(self, page: WebPage) -> tuple[str, ...]:
        """Answer strings extracted from one page."""

    def predict_all(self, pages: list[WebPage]) -> list[tuple[str, ...]]:
        return [self.predict(page) for page in pages]
