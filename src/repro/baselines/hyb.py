"""The HYB baseline — wrapper induction by example (paper Section 8.1).

Models Raza & Gulwani's hybrid web-data-extraction synthesizer at the
level that matters for the comparison: it learns *structural path*
programs (XPath-analogues over the webpage tree) that must reproduce the
provided labels **exactly**.  Its two failure modes on heterogeneous
pages are the ones the paper reports:

* a gold string that is not exactly the text of some tree node cannot be
  expressed at all (no sub-node string processing), and
* paths learned on the training pages rarely generalize when section
  order, nesting depth, or list encodings differ across pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.models import NlpModels
from ..synthesis.examples import LabeledExample
from ..webtree.node import PageNode, WebPage
from ..webtree.paths import node_path
from .base import ExtractionTool

#: Wildcard child index ("any position among siblings").
WILDCARD = -1


@dataclass(frozen=True)
class PathProgram:
    """A generalized child-index path; ``WILDCARD`` steps match any child."""

    steps: tuple[int, ...]

    def run(self, page: WebPage) -> list[PageNode]:
        frontier = [page.root]
        for step in self.steps:
            next_frontier: list[PageNode] = []
            for node in frontier:
                if step == WILDCARD:
                    next_frontier.extend(node.children)
                elif 0 <= step < len(node.children):
                    next_frontier.append(node.children[step])
            frontier = next_frontier
            if not frontier:
                break
        return frontier


def generalize(paths: list[tuple[int, ...]]) -> PathProgram | None:
    """Least-general path covering all examples, or None if lengths differ.

    >>> generalize([(0, 1), (0, 2)]).steps
    (0, -1)
    """
    if not paths:
        return None
    length = len(paths[0])
    if any(len(p) != length for p in paths):
        return None
    steps = tuple(
        paths[0][i] if all(p[i] == paths[0][i] for p in paths) else WILDCARD
        for i in range(length)
    )
    return PathProgram(steps)


class HybBaseline(ExtractionTool):
    """Exact-match structural-path wrapper induction."""

    name = "HYB"

    def __init__(self) -> None:
        self._programs: tuple[PathProgram, ...] = ()

    def fit(
        self,
        question: str,
        keywords: tuple[str, ...],
        train: list[LabeledExample],
        unlabeled: list[WebPage],
        models: NlpModels,
    ) -> "HybBaseline":
        # 1. Locate each gold string as an exact node text on its page.
        per_page_paths: list[list[tuple[int, ...]]] = []
        for example in train:
            if not example.gold:
                continue
            paths: list[tuple[int, ...]] = []
            text_to_node = {n.text: n for n in example.page.nodes()}
            for gold in example.gold:
                node = text_to_node.get(gold)
                if node is None:
                    # Exact-match induction cannot express this label.
                    paths = []
                    break
                paths.append(node_path(node))
            if paths:
                per_page_paths.append(paths)
        if not per_page_paths:
            self._programs = ()
            return self
        # 2. Generalize within each page (one program covering all labels),
        #    then across pages (programs must agree after generalization).
        page_programs: list[PathProgram] = []
        for paths in per_page_paths:
            program = generalize(paths)
            if program is None:
                self._programs = ()
                return self
            page_programs.append(program)
        merged = generalize([p.steps for p in page_programs])
        # WILDCARD steps survive cross-page generalization as wildcards.
        if merged is None:
            self._programs = ()
            return self
        steps = tuple(
            WILDCARD
            if any(p.steps[i] == WILDCARD for p in page_programs)
            else merged.steps[i]
            for i in range(len(merged.steps))
        )
        self._programs = (PathProgram(steps),)
        return self

    def predict(self, page: WebPage) -> tuple[str, ...]:
        answers: list[str] = []
        for program in self._programs:
            for node in program.run(page):
                if node.text and node.text not in answers:
                    answers.append(node.text)
        return tuple(answers)
