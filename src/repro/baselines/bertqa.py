"""The BERTQA baseline (paper Section 8.1).

"A state-of-the-art textual question answering system that takes as input
an entire webpage and a question and outputs the answer."  The webpage is
flattened to raw text — deliberately discarding the tree structure — and
the QA model returns its single best span.  Per the paper's footnote 10,
the labeled examples are ignored (fine-tuning made the real system
worse), which this reproduction mirrors by making ``fit`` a no-op on the
training data.
"""

from __future__ import annotations

from ..nlp.models import NlpModels
from ..synthesis.examples import LabeledExample
from ..webtree.node import WebPage
from .base import ExtractionTool


def flatten_page(page: WebPage) -> str:
    """The rendered page as one text blob, one node per line.

    This is what "treating the webpage as a raw sequence of words"
    (Section 1) means operationally: all nesting information is gone.
    """
    return "\n".join(n.text for n in page.nodes() if n.text)


class BertQaBaseline(ExtractionTool):
    """Single-span extractive QA over the flattened page."""

    name = "BERTQA"

    def __init__(self) -> None:
        self._question = ""
        self._models: NlpModels | None = None

    def fit(
        self,
        question: str,
        keywords: tuple[str, ...],
        train: list[LabeledExample],
        unlabeled: list[WebPage],
        models: NlpModels,
    ) -> "BertQaBaseline":
        self._question = question
        self._models = models
        return self

    def predict(self, page: WebPage) -> tuple[str, ...]:
        assert self._models is not None, "fit must be called before predict"
        text = flatten_page(page)
        answer = self._models.qa.answer(self._question, text)
        if answer is None or answer.score < self._models.qa.threshold:
            return ()
        return (answer.text,)
