"""The EntExtract baseline — zero-shot entity-list extraction.

Models Pasupat & Liang (2014): given only a natural-language query, find
the structural group of page elements most likely to be the queried list.
Candidate groups are sibling sets under a common parent (the paper's
XPath-cluster analogue); each group is scored by lexical similarity of
its *header* to the query.  No labeled examples are used.

The reproduced failure mode matches the paper's analysis: the tool picks
a plausible-looking structured list, but with no examples to anchor it,
the list is often the wrong one (publications instead of students), and
there is no sub-node string processing.
"""

from __future__ import annotations

from ..nlp.models import NlpModels
from ..nlp.qa import question_content_words
from ..synthesis.examples import LabeledExample
from ..webtree.node import PageNode, WebPage
from .base import ExtractionTool


def candidate_groups(page: WebPage) -> list[tuple[PageNode, list[PageNode]]]:
    """(header node, member nodes) for every sibling group of size ≥ 2."""
    groups: list[tuple[PageNode, list[PageNode]]] = []
    for node in page.nodes():
        members = [c for c in node.children if c.is_leaf() and c.text]
        if len(members) >= 2:
            groups.append((node, members))
    return groups


class EntExtractBaseline(ExtractionTool):
    """Query-driven zero-shot list extraction."""

    name = "EntExtract"

    def __init__(self) -> None:
        self._query_words: tuple[str, ...] = ()
        self._models: NlpModels | None = None

    def fit(
        self,
        question: str,
        keywords: tuple[str, ...],
        train: list[LabeledExample],
        unlabeled: list[WebPage],
        models: NlpModels,
    ) -> "EntExtractBaseline":
        # Zero-shot: only the natural language query is consumed.
        self._query_words = tuple(question_content_words(question)) or (question,)
        self._models = models
        return self

    def predict(self, page: WebPage) -> tuple[str, ...]:
        assert self._models is not None, "fit must be called before predict"
        groups = candidate_groups(page)
        if not groups:
            return ()
        best_members: list[PageNode] = []
        best_score = -1.0
        for header, members in groups:
            header_text = header.text or ""
            score = self._models.keyword_similarity(header_text, self._query_words)
            # Mild preference for larger groups: queried lists tend to be
            # the page's substantive enumerations.
            score += min(len(members), 10) * 0.01
            if score > best_score:
                best_score = score
                best_members = members
        return tuple(m.text for m in best_members)
