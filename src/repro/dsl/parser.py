"""Parser for the DSL's surface syntax (inverse of :mod:`~repro.dsl.pretty`).

Accepts exactly the notation the pretty-printer emits — the paper's own
notation from Figure 5 — so programs can be written or edited by hand::

    parse_program(
        "λQ,K,W. { Sat(GetRoot(W), λz.⊤) → λx.ExtractContent(x) }"
    )

Round-trip law (property-checked by the test suite)::

    parse_program(pretty_program(p)) == p
"""

from __future__ import annotations

import re

from . import ast


class DslSyntaxError(ValueError):
    """Raised when the input is not well-formed DSL surface syntax."""


_TOKEN_RE = re.compile(
    r"""
      λQ,K,W\.            # program lambda
    | λ[xzn]\.            # binder lambdas
    | →                   # branch arrow
    | [{}();,]            # punctuation
    | ∧ | ∨ | ¬ | ⊤      # logical symbols
    | '(?:[^'\\]|\\.)'    # character literal for Split
    | \d+\.\d+            # float (thresholds)
    | \d+                 # int (k)
    | [^\W\d]\w*          # identifiers (unicode letters, e.g. entity labels)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    for match in _TOKEN_RE.finditer(text):
        between = text[position : match.start()]
        if between.strip():
            raise DslSyntaxError(f"unexpected input: {between.strip()!r}")
        tokens.append(match.group())
        position = match.end()
    if text[position:].strip():
        raise DslSyntaxError(f"unexpected trailing input: {text[position:].strip()!r}")
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise DslSyntaxError("unexpected end of input")
        self._index += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token != expected:
            raise DslSyntaxError(f"expected {expected!r}, found {token!r}")

    def done(self) -> bool:
        return self._index >= len(self._tokens)

    # -- grammar ----------------------------------------------------------------

    def program(self) -> ast.Program:
        self.expect("λQ,K,W.")
        self.expect("{")
        branches: list[ast.Branch] = []
        if self.peek() != "}":
            branches.append(self.branch())
            while self.peek() == ";":
                self.next()
                branches.append(self.branch())
        self.expect("}")
        return ast.Program(tuple(branches))

    def branch(self) -> ast.Branch:
        guard = self.guard()
        self.expect("→")
        self.expect("λx.")
        return ast.Branch(guard, self.extractor())

    def guard(self) -> ast.Guard:
        head = self.next()
        self.expect("(")
        if head == "IsSingleton":
            locator = self.locator()
            self.expect(")")
            return ast.IsSingleton(locator)
        if head == "Sat":
            locator = self.locator()
            self.expect(",")
            self.expect("λz.")
            pred = self.pred()
            self.expect(")")
            return ast.Sat(locator, pred)
        raise DslSyntaxError(f"expected a guard, found {head!r}")

    def locator(self) -> ast.Locator:
        head = self.next()
        self.expect("(")
        if head == "GetRoot":
            self.expect("W")
            self.expect(")")
            return ast.GetRoot()
        if head in ("GetChildren", "GetDescendants"):
            source = self.locator()
            self.expect(",")
            self.expect("λn.")
            node_filter = self.node_filter()
            self.expect(")")
            cls = ast.GetChildren if head == "GetChildren" else ast.GetDescendants
            return cls(source, node_filter)
        raise DslSyntaxError(f"expected a locator, found {head!r}")

    def node_filter(self) -> ast.NodeFilter:
        token = self.peek()
        if token == "⊤":
            self.next()
            return ast.TrueFilter()
        if token == "¬":
            self.next()
            return ast.NotFilter(self.node_filter())
        if token == "(":
            self.next()
            left = self.node_filter()
            op = self.next()
            right = self.node_filter()
            self.expect(")")
            if op == "∧":
                return ast.AndFilter(left, right)
            if op == "∨":
                return ast.OrFilter(left, right)
            raise DslSyntaxError(f"expected ∧ or ∨, found {op!r}")
        head = self.next()
        self.expect("(")
        if head in ("isLeaf", "isElem"):
            self.expect("n")
            self.expect(")")
            return ast.IsLeaf() if head == "isLeaf" else ast.IsElem()
        if head == "matchText":
            self.expect("n")
            self.expect(",")
            self.expect("λz.")
            pred = self.pred()
            self.expect(",")
            flag = self.next()
            if flag not in ("true", "false"):
                raise DslSyntaxError(f"expected true/false, found {flag!r}")
            self.expect(")")
            return ast.MatchText(pred, flag == "true")
        raise DslSyntaxError(f"expected a node filter, found {head!r}")

    def pred(self) -> ast.NlpPred:
        token = self.peek()
        if token == "⊤":
            self.next()
            return ast.TruePred()
        if token == "¬":
            self.next()
            return ast.NotPred(self.pred())
        if token == "(":
            self.next()
            left = self.pred()
            op = self.next()
            right = self.pred()
            self.expect(")")
            if op == "∧":
                return ast.AndPred(left, right)
            if op == "∨":
                return ast.OrPred(left, right)
            raise DslSyntaxError(f"expected ∧ or ∨, found {op!r}")
        head = self.next()
        self.expect("(")
        self.expect("z")
        self.expect(",")
        if head == "matchKeyword":
            self.expect("K")
            self.expect(",")
            threshold = self.next()
            self.expect(")")
            return ast.MatchKeyword(float(threshold))
        if head == "hasAnswer":
            self.expect("Q")
            self.expect(")")
            return ast.HasAnswer()
        if head == "hasEntity":
            label = self.next()
            self.expect(")")
            return ast.HasEntity(label)
        raise DslSyntaxError(f"expected an NLP predicate, found {head!r}")

    def extractor(self) -> ast.Extractor:
        head = self.next()
        self.expect("(")
        if head == "ExtractContent":
            self.expect("x")
            self.expect(")")
            return ast.ExtractContent()
        if head == "Split":
            source = self.extractor()
            self.expect(",")
            literal = self.next()
            if not (literal.startswith("'") and literal.endswith("'")):
                raise DslSyntaxError(f"expected a delimiter literal, found {literal!r}")
            self.expect(")")
            return ast.Split(source, literal[1:-1].replace("\\'", "'"))
        if head == "Filter":
            source = self.extractor()
            self.expect(",")
            self.expect("λz.")
            pred = self.pred()
            self.expect(")")
            return ast.Filter(source, pred)
        if head == "Substring":
            source = self.extractor()
            self.expect(",")
            self.expect("λz.")
            pred = self.pred()
            self.expect(",")
            k = int(self.next())
            self.expect(")")
            return ast.Substring(source, pred, k)
        raise DslSyntaxError(f"expected an extractor, found {head!r}")


def parse_program(text: str) -> ast.Program:
    """Parse a full program in the paper's surface syntax."""
    parser = _Parser(_tokenize(text))
    program = parser.program()
    if not parser.done():
        raise DslSyntaxError(f"unexpected trailing tokens: {parser.peek()!r}")
    return program


def parse_extractor(text: str) -> ast.Extractor:
    """Parse a standalone extractor expression."""
    parser = _Parser(_tokenize(text))
    extractor = parser.extractor()
    if not parser.done():
        raise DslSyntaxError(f"unexpected trailing tokens: {parser.peek()!r}")
    return extractor


def parse_locator(text: str) -> ast.Locator:
    """Parse a standalone section-locator expression."""
    parser = _Parser(_tokenize(text))
    locator = parser.locator()
    if not parser.done():
        raise DslSyntaxError(f"unexpected trailing tokens: {parser.peek()!r}")
    return locator
