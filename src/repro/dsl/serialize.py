"""JSON (de)serialization of DSL programs.

A synthesized extractor is an asset worth keeping: fit once, save the
program, and re-run it later (or ship it) without re-synthesizing.  The
format is a plain nested-dict encoding of the AST — stable, readable,
and diffable::

    {"kind": "Program", "branches": [{"kind": "Branch",
        "guard": {"kind": "Sat", "locator": {...}, "pred": {...}},
        "extractor": {"kind": "Filter", ...}}]}

``loads(dumps(p)) == p`` holds for every well-formed term (structural
equality), which the test suite property-checks.
"""

from __future__ import annotations

import json
from typing import Any

from . import ast

# Leaf node kinds and their constructors/fields, used by both directions.
_PRED_KINDS = {
    "MatchKeyword": (ast.MatchKeyword, ("threshold",)),
    "HasAnswer": (ast.HasAnswer, ()),
    "HasEntity": (ast.HasEntity, ("label",)),
    "TruePred": (ast.TruePred, ()),
}
_FILTER_KINDS = {
    "IsLeaf": (ast.IsLeaf, ()),
    "IsElem": (ast.IsElem, ()),
    "TrueFilter": (ast.TrueFilter, ()),
}


def node_to_dict(node: ast.AnyNode) -> dict[str, Any]:
    """Encode any DSL term as a JSON-compatible dictionary."""
    # -- NLP predicates ---------------------------------------------------
    if isinstance(node, ast.MatchKeyword):
        return {"kind": "MatchKeyword", "threshold": node.threshold}
    if isinstance(node, ast.HasAnswer):
        return {"kind": "HasAnswer"}
    if isinstance(node, ast.HasEntity):
        return {"kind": "HasEntity", "label": node.label}
    if isinstance(node, ast.TruePred):
        return {"kind": "TruePred"}
    if isinstance(node, ast.AndPred):
        return {"kind": "AndPred", "left": node_to_dict(node.left),
                "right": node_to_dict(node.right)}
    if isinstance(node, ast.OrPred):
        return {"kind": "OrPred", "left": node_to_dict(node.left),
                "right": node_to_dict(node.right)}
    if isinstance(node, ast.NotPred):
        return {"kind": "NotPred", "operand": node_to_dict(node.operand)}
    # -- node filters -----------------------------------------------------------
    if isinstance(node, ast.IsLeaf):
        return {"kind": "IsLeaf"}
    if isinstance(node, ast.IsElem):
        return {"kind": "IsElem"}
    if isinstance(node, ast.TrueFilter):
        return {"kind": "TrueFilter"}
    if isinstance(node, ast.MatchText):
        return {"kind": "MatchText", "pred": node_to_dict(node.pred),
                "whole_subtree": node.whole_subtree}
    if isinstance(node, ast.AndFilter):
        return {"kind": "AndFilter", "left": node_to_dict(node.left),
                "right": node_to_dict(node.right)}
    if isinstance(node, ast.OrFilter):
        return {"kind": "OrFilter", "left": node_to_dict(node.left),
                "right": node_to_dict(node.right)}
    if isinstance(node, ast.NotFilter):
        return {"kind": "NotFilter", "operand": node_to_dict(node.operand)}
    # -- locators -------------------------------------------------------------------
    if isinstance(node, ast.GetRoot):
        return {"kind": "GetRoot"}
    if isinstance(node, ast.GetChildren):
        return {"kind": "GetChildren", "source": node_to_dict(node.source),
                "node_filter": node_to_dict(node.node_filter)}
    if isinstance(node, ast.GetDescendants):
        return {"kind": "GetDescendants", "source": node_to_dict(node.source),
                "node_filter": node_to_dict(node.node_filter)}
    # -- guards ----------------------------------------------------------------------
    if isinstance(node, ast.Sat):
        return {"kind": "Sat", "locator": node_to_dict(node.locator),
                "pred": node_to_dict(node.pred)}
    if isinstance(node, ast.IsSingleton):
        return {"kind": "IsSingleton", "locator": node_to_dict(node.locator)}
    # -- extractors --------------------------------------------------------------------
    if isinstance(node, ast.ExtractContent):
        return {"kind": "ExtractContent"}
    if isinstance(node, ast.Split):
        return {"kind": "Split", "source": node_to_dict(node.source),
                "delimiter": node.delimiter}
    if isinstance(node, ast.Filter):
        return {"kind": "Filter", "source": node_to_dict(node.source),
                "pred": node_to_dict(node.pred)}
    if isinstance(node, ast.Substring):
        return {"kind": "Substring", "source": node_to_dict(node.source),
                "pred": node_to_dict(node.pred), "k": node.k}
    # -- program shell -----------------------------------------------------------------
    if isinstance(node, ast.Branch):
        return {"kind": "Branch", "guard": node_to_dict(node.guard),
                "extractor": node_to_dict(node.extractor)}
    if isinstance(node, ast.Program):
        return {"kind": "Program",
                "branches": [node_to_dict(b) for b in node.branches]}
    raise TypeError(f"not a DSL term: {node!r}")


def node_from_dict(data: dict[str, Any]) -> ast.AnyNode:
    """Decode a dictionary produced by :func:`node_to_dict`."""
    kind = data.get("kind")
    if kind in _PRED_KINDS:
        cls, fields = _PRED_KINDS[kind]
        return cls(**{f: data[f] for f in fields})
    if kind in _FILTER_KINDS:
        cls, _ = _FILTER_KINDS[kind]
        return cls()
    if kind == "AndPred":
        return ast.AndPred(node_from_dict(data["left"]), node_from_dict(data["right"]))
    if kind == "OrPred":
        return ast.OrPred(node_from_dict(data["left"]), node_from_dict(data["right"]))
    if kind == "NotPred":
        return ast.NotPred(node_from_dict(data["operand"]))
    if kind == "MatchText":
        return ast.MatchText(node_from_dict(data["pred"]), data["whole_subtree"])
    if kind == "AndFilter":
        return ast.AndFilter(
            node_from_dict(data["left"]), node_from_dict(data["right"])
        )
    if kind == "OrFilter":
        return ast.OrFilter(
            node_from_dict(data["left"]), node_from_dict(data["right"])
        )
    if kind == "NotFilter":
        return ast.NotFilter(node_from_dict(data["operand"]))
    if kind == "GetRoot":
        return ast.GetRoot()
    if kind == "GetChildren":
        return ast.GetChildren(
            node_from_dict(data["source"]), node_from_dict(data["node_filter"])
        )
    if kind == "GetDescendants":
        return ast.GetDescendants(
            node_from_dict(data["source"]), node_from_dict(data["node_filter"])
        )
    if kind == "Sat":
        return ast.Sat(node_from_dict(data["locator"]), node_from_dict(data["pred"]))
    if kind == "IsSingleton":
        return ast.IsSingleton(node_from_dict(data["locator"]))
    if kind == "ExtractContent":
        return ast.ExtractContent()
    if kind == "Split":
        return ast.Split(node_from_dict(data["source"]), data["delimiter"])
    if kind == "Filter":
        return ast.Filter(node_from_dict(data["source"]), node_from_dict(data["pred"]))
    if kind == "Substring":
        return ast.Substring(
            node_from_dict(data["source"]), node_from_dict(data["pred"]), data["k"]
        )
    if kind == "Branch":
        return ast.Branch(
            node_from_dict(data["guard"]), node_from_dict(data["extractor"])
        )
    if kind == "Program":
        return ast.Program(
            tuple(node_from_dict(b) for b in data["branches"])
        )
    raise ValueError(f"unknown DSL node kind: {kind!r}")


def program_to_dict(program: ast.Program) -> dict[str, Any]:
    """Encode a full program; entry point used by embedding formats.

    Same encoding as :func:`node_to_dict`, but statically typed to
    programs so containers (e.g. the program artifacts of
    :mod:`repro.core.artifact`) can embed the dictionary in a larger
    JSON document without re-validating the node kind.
    """
    if not isinstance(program, ast.Program):
        raise TypeError(f"expected a Program, got {program!r}")
    return node_to_dict(program)


def program_from_dict(data: dict[str, Any]) -> ast.Program:
    """Decode a dictionary produced by :func:`program_to_dict`."""
    program = node_from_dict(data)
    if not isinstance(program, ast.Program):
        raise ValueError("dictionary does not encode a Program")
    return program


def dumps(program: ast.Program, **json_kwargs: Any) -> str:
    """Serialize a program to a JSON string."""
    return json.dumps(node_to_dict(program), **json_kwargs)


def loads(text: str) -> ast.Program:
    """Deserialize a program from :func:`dumps` output."""
    return program_from_dict(json.loads(text))


def save_program(program: ast.Program, path: str) -> None:
    """Write a program to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(program, indent=2))


def load_program(path: str) -> ast.Program:
    """Read a program previously written by :func:`save_program`."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
