"""Interpreter for the WebQA DSL (denotational semantics of Section 4).

Evaluation is organized around an :class:`EvalContext` that carries the
program inputs (question Q, keywords K, webpage W), the neural model
bundle, and memo tables.  Synthesis re-evaluates shared subprograms
constantly; memoizing locator and extractor denotations is what the
paper's footnote 6 alludes to and is essential for performance.

Two interchangeable engines implement the semantics (see DESIGN.md):

* ``"reference"`` (:class:`ReferenceEvalContext`) — the direct
  object-graph interpreter: locators walk ``PageNode`` generators and
  filters dispatch per node.  Simple, and the oracle the indexed engine
  is differentially tested against.
* ``"indexed"`` (:class:`IndexedEvalContext`, the default) — evaluates
  over the page's Euler-tour index (:mod:`repro.webtree.index`).  Node
  sets are rank bitsets: ``GetDescendants`` is a two-shift range mask,
  compound filters are bitwise algebra, and atomic ``matchText`` filters
  keep lazily grown per-page match bitsets.  All memo tables are hoisted
  to page scope, so every context over the same (page, Q, K, models)
  quadruple shares one set of caches.

``EvalContext(page, q, k, models)`` transparently constructs the default
engine; pass ``engine="reference"`` (or set
``SynthesisConfig.engine``) to select the other.  Both engines return
*document-ordered* distinct node tuples, so their results are
bit-for-bit comparable.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Sequence

from ..nlp.models import NlpModels
from ..webtree.index import PageIndex, iter_ranks
from ..webtree.node import PageNode, WebPage
from . import ast
from .types import Answer, Keywords, NodeSet, Question, dedupe_ordered

#: Delimiters the Split construct may use (the paper's ``c``).
SPLIT_DELIMITERS = (",", ";", "|", "•", "/")

#: Engine used when none is requested explicitly.
DEFAULT_ENGINE = "indexed"

#: The selectable evaluation engines.
ENGINES = ("indexed", "reference")


def resolve_engine(engine: str | None) -> type["EvalContext"]:
    """The context class implementing ``engine`` (None → the default)."""
    name = engine or DEFAULT_ENGINE
    if name == "indexed":
        return IndexedEvalContext
    if name == "reference":
        return ReferenceEvalContext
    raise ValueError(f"unknown eval engine {engine!r}; expected one of {ENGINES}")


class EvalContext:
    """Evaluation state for one (question, keywords, webpage) triple.

    Instantiating :class:`EvalContext` directly dispatches to the engine
    named by ``engine`` (default :data:`DEFAULT_ENGINE`); the shared
    denotations (NLP predicates, guards, extractors, programs) live here
    and only the locator/filter machinery differs per engine.
    """

    def __new__(
        cls,
        page: WebPage,
        question: Question,
        keywords: Keywords,
        models: NlpModels,
        engine: str | None = None,
    ) -> "EvalContext":
        if cls is EvalContext:
            cls = resolve_engine(engine)
        return object.__new__(cls)

    def __init__(
        self,
        page: WebPage,
        question: Question,
        keywords: Keywords,
        models: NlpModels,
        engine: str | None = None,
    ) -> None:
        self.page = page
        self.question = question
        self.keywords = tuple(keywords)
        self.models = models
        self._locator_cache: dict[ast.Locator, NodeSet] = {}
        #: Two-level memo: node set -> {extractor -> answer}.  The outer
        #: probe hashes the (potentially long) node tuple once per call
        #: site; inner probes hash only the extractor, whose structural
        #: hash is cached — the layout the frontier kernels rely on to
        #: probe whole sibling families cheaply.
        self._extractor_cache: dict[NodeSet, dict[ast.Extractor, Answer]] = {}
        self._pred_cache: dict[tuple[ast.NlpPred, str], bool] = {}
        #: locator -> best keyword similarity over located texts (the
        #: Sat/matchKeyword guard sweep; page-scoped on the indexed
        #: engine, per-context here).
        self._kw_guard_best: dict[ast.Locator, float] = {}

    #: Engine name, for introspection and config round-trips.
    engine_name = "abstract"

    # -- NLP predicates φ over strings ----------------------------------------

    def eval_pred(self, pred: ast.NlpPred, text: str) -> bool:
        key = (pred, text)
        cached = self._pred_cache.get(key)
        if cached is None:
            cached = self._eval_pred_uncached(pred, text)
            self._pred_cache[key] = cached
        return cached

    def _eval_pred_uncached(self, pred: ast.NlpPred, text: str) -> bool:
        if isinstance(pred, ast.TruePred):
            return bool(text.strip())
        if isinstance(pred, ast.MatchKeyword):
            return self.models.match_keyword(text, self.keywords, pred.threshold)
        if isinstance(pred, ast.HasAnswer):
            return self.models.has_answer(text, self.question)
        if isinstance(pred, ast.HasEntity):
            return self.models.has_entity(text, pred.label)
        if isinstance(pred, ast.AndPred):
            return self.eval_pred(pred.left, text) and self.eval_pred(pred.right, text)
        if isinstance(pred, ast.OrPred):
            return self.eval_pred(pred.left, text) or self.eval_pred(pred.right, text)
        if isinstance(pred, ast.NotPred):
            return not self.eval_pred(pred.operand, text)
        raise TypeError(f"unknown NLP predicate: {pred!r}")

    # -- node filters φ over tree nodes ---------------------------------------

    def eval_filter(self, node_filter: ast.NodeFilter, node: PageNode) -> bool:
        if isinstance(node_filter, ast.TrueFilter):
            return True
        if isinstance(node_filter, ast.IsLeaf):
            return node.is_leaf()
        if isinstance(node_filter, ast.IsElem):
            return node.is_elem()
        if isinstance(node_filter, ast.MatchText):
            text = node.subtree_text() if node_filter.whole_subtree else node.text
            return self.eval_pred(node_filter.pred, text)
        if isinstance(node_filter, ast.AndFilter):
            return self.eval_filter(node_filter.left, node) and self.eval_filter(
                node_filter.right, node
            )
        if isinstance(node_filter, ast.OrFilter):
            return self.eval_filter(node_filter.left, node) or self.eval_filter(
                node_filter.right, node
            )
        if isinstance(node_filter, ast.NotFilter):
            return not self.eval_filter(node_filter.operand, node)
        raise TypeError(f"unknown node filter: {node_filter!r}")

    # -- section locators ν ----------------------------------------------------

    def eval_locator(self, locator: ast.Locator) -> NodeSet:
        cached = self._locator_cache.get(locator)
        if cached is None:
            cached = self._eval_locator_uncached(locator)
            self._locator_cache[locator] = cached
        return cached

    def _eval_locator_uncached(self, locator: ast.Locator) -> NodeSet:
        raise NotImplementedError  # engine-specific

    def signature_key(self, locator: ast.Locator):
        """This page's behaviour key for ``locator``.

        Two locators get equal keys iff they locate the same node set on
        this page.  The reference engine uses the document-ordered
        node-id tuple; the indexed engine overrides this with the rank
        bitset it computes anyway, skipping node materialization.  Keys
        are opaque to callers (dedup/memo identity only) and
        representation is uniform per engine, so dedup decisions are
        identical across engines.
        """
        return tuple(node.node_id for node in self.eval_locator(locator))

    def locator_frontier_keys(
        self, parent: ast.Locator, extensions: Sequence[ast.Locator]
    ) -> list:
        """:meth:`signature_key` for every one-step extension of ``parent``.

        The indexed engine overrides this to materialize the shared
        parent candidate set once for the whole sibling filter family.
        """
        return [self.signature_key(extension) for extension in extensions]

    # -- guards ψ --------------------------------------------------------------

    def eval_guard(self, guard: ast.Guard) -> tuple[bool, NodeSet]:
        """Guard denotation: (fired?, located nodes)."""
        nodes = self.eval_locator(guard.locator)
        if isinstance(guard, ast.IsSingleton):
            return len(nodes) == 1, nodes
        if isinstance(guard, ast.Sat):
            fired = any(self.eval_pred(guard.pred, node.text) for node in nodes)
            return fired, nodes
        raise TypeError(f"unknown guard: {guard!r}")

    def eval_guards_fired(self, guards: Sequence[ast.Guard]) -> list[bool]:
        """Whether each guard fires on this page, frontier-batched.

        Bit-identical to ``[self.eval_guard(g)[0] for g in guards]``.
        Sibling ``Sat``/``matchKeyword`` guards over one locator (the
        ``GenGuards`` threshold family) collapse to a single
        threshold-sweep over the located node texts
        (:meth:`~repro.nlp.models.NlpModels.match_keyword_thresholds`);
        noise-aware bundles override that kernel, so the collapse is
        safe for every model bundle, not just the pure one.
        """
        results: list[bool] = [False] * len(guards)
        sweeps: dict[ast.Locator, list[tuple[int, float]]] = {}
        nodes_of: dict[ast.Locator, NodeSet] = {}
        for i, guard in enumerate(guards):
            locator = guard.locator
            nodes = nodes_of.get(locator)
            if nodes is None:
                nodes = nodes_of[locator] = self.eval_locator(locator)
            if isinstance(guard, ast.IsSingleton):
                results[i] = len(nodes) == 1
            elif isinstance(guard, ast.Sat):
                pred = guard.pred
                if isinstance(pred, ast.MatchKeyword) and nodes:
                    sweeps.setdefault(locator, []).append(
                        (i, pred.threshold)
                    )
                else:
                    results[i] = any(
                        self.eval_pred(pred, node.text) for node in nodes
                    )
            else:
                raise TypeError(f"unknown guard: {guard!r}")
        if sweeps:
            pure = getattr(self.models, "batch_keyword_planes", False)
            for locator, members in sweeps.items():
                if pure:
                    # any(sim >= t) == (max sim >= t): one scoring pass
                    # and one float compare per threshold.  Valid only
                    # when match_keyword is a pure threshold over the
                    # similarity (the plane gate).
                    best = self._kw_guard_best.get(locator)
                    if best is None:
                        best = float(
                            self.models.keyword_similarity_batch(
                                [node.text for node in nodes_of[locator]],
                                self.keywords,
                            ).max()
                        )
                        self._kw_guard_best[locator] = best
                    for i, threshold in members:
                        results[i] = best >= threshold
                else:
                    table = self.models.match_keyword_thresholds(
                        [node.text for node in nodes_of[locator]],
                        self.keywords,
                        [threshold for _, threshold in members],
                    )
                    fired = table.any(axis=0)
                    for (i, _), value in zip(members, fired):
                        results[i] = bool(value)
        return results

    # -- extractors e ----------------------------------------------------------

    def extractor_memo(self, nodes: NodeSet) -> dict:
        """The per-node-set extractor memo table (created on demand)."""
        memo = self._extractor_cache.get(nodes)
        if memo is None:
            memo = {}
            self._extractor_cache[nodes] = memo
        return memo

    def eval_extractor(self, extractor: ast.Extractor, nodes: NodeSet) -> Answer:
        memo = self.extractor_memo(nodes)
        cached = memo.get(extractor)
        if cached is None:
            cached = self._eval_extractor_uncached(extractor, nodes)
            memo[extractor] = cached
        return cached

    def _eval_extractor_uncached(
        self, extractor: ast.Extractor, nodes: NodeSet
    ) -> Answer:
        if isinstance(extractor, ast.ExtractContent):
            return dedupe_ordered([n.text for n in nodes])
        if isinstance(extractor, ast.Split):
            source = self.eval_extractor(extractor.source, nodes)
            pieces: list[str] = []
            for item in source:
                pieces.extend(p.strip() for p in item.split(extractor.delimiter))
            return dedupe_ordered(pieces)
        if isinstance(extractor, ast.Filter):
            source = self.eval_extractor(extractor.source, nodes)
            return dedupe_ordered(
                [s for s in source if self.eval_pred(extractor.pred, s)]
            )
        if isinstance(extractor, ast.Substring):
            source = self.eval_extractor(extractor.source, nodes)
            found: list[str] = []
            for item in source:
                found.extend(self.substrings(extractor.pred, item, extractor.k))
            return dedupe_ordered(found)
        raise TypeError(f"unknown extractor: {extractor!r}")

    # -- Substring candidate generation ----------------------------------------

    def substrings(self, pred: ast.NlpPred, text: str, k: int) -> list[str]:
        """Top-k substrings of ``text`` satisfying ``pred``.

        Atomic predicates have natural span generators (entity spans, QA
        answer spans, keyword-scored segments); compound predicates pool
        the candidates of their atoms and keep those on which the full
        predicate holds.
        """
        if isinstance(pred, ast.HasEntity):
            return self.models.entity_substrings(text, pred.label, k)
        if isinstance(pred, ast.HasAnswer):
            return self.models.answer_substrings(text, self.question, k)
        if isinstance(pred, ast.MatchKeyword):
            segments = _segments(text)
            scores = self.models.keyword_similarity_batch(segments, self.keywords)
            scored = [
                (score, seg)
                for score, seg in zip(scores, segments)
                if score >= pred.threshold
            ]
            # Stable sort on the already-computed scores: ties keep
            # segment order, exactly as the old re-scoring sort did.
            scored.sort(key=lambda pair: -pair[0])
            winners = [seg for _, seg in scored]
            return winners[:k] if k > 0 else winners
        if isinstance(pred, ast.TruePred):
            return [text] if text.strip() else []
        # Compound predicates: union of atomic candidates, filtered.
        candidates: list[str] = []
        for atom in _atoms(pred):
            candidates.extend(self.substrings(atom, text, 0) or _segments(text))
        kept = [c for c in dedupe_ordered(candidates) if self.eval_pred(pred, c)]
        return kept[:k] if k > 0 else kept

    # -- programs --------------------------------------------------------------

    def eval_branch(self, branch: ast.Branch) -> Answer | None:
        """Branch result if its guard fires, else ``None``."""
        fired, nodes = self.eval_guard(branch.guard)
        if not fired:
            return None
        return self.eval_extractor(branch.extractor, nodes)

    def eval_program(self, program: ast.Program) -> Answer:
        for branch in program.branches:
            result = self.eval_branch(branch)
            if result is not None:
                return result
        return ()


class ReferenceEvalContext(EvalContext):
    """The direct object-graph interpreter.

    This is the seed interpreter with one deliberate change: located
    node sets are normalized to document (pre-order) order via
    :meth:`_ordered_nodes`, where the seed kept first-occurrence
    traversal order (the two differ only when a locator's source set
    contains both an ancestor and its descendant).  Both engines share
    the normalization, making their outputs bit-for-bit comparable; the
    differential tests in ``tests/dsl/test_engine_equivalence.py`` hold
    the indexed engine to this implementation's outputs.
    """

    engine_name = "reference"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._ranks: dict[int, int] | None = None

    def _eval_locator_uncached(self, locator: ast.Locator) -> NodeSet:
        if isinstance(locator, ast.GetRoot):
            return (self.page.root,)
        if isinstance(locator, ast.GetChildren):
            sources = self.eval_locator(locator.source)
            found = [
                child
                for node in sources
                for child in node.children
                if self.eval_filter(locator.node_filter, child)
            ]
            return self._ordered_nodes(found)
        if isinstance(locator, ast.GetDescendants):
            sources = self.eval_locator(locator.source)
            found = [
                descendant
                for node in sources
                for descendant in node.descendants()
                if self.eval_filter(locator.node_filter, descendant)
            ]
            return self._ordered_nodes(found)
        raise TypeError(f"unknown locator: {locator!r}")

    def _ordered_nodes(self, nodes: list[PageNode]) -> NodeSet:
        """Distinct nodes in document (pre-order) order.

        Overlapping sources can surface a node's descendants before its
        later siblings, so first-occurrence order is not document order;
        both engines normalize to pre-order rank.
        """
        unique = {id(node): node for node in nodes}
        if self._ranks is None or any(key not in self._ranks for key in unique):
            self._ranks = {
                id(node): rank
                for rank, node in enumerate(self.page.root.iter_subtree())
            }
        ranks = self._ranks
        return tuple(
            sorted(unique.values(), key=lambda node: ranks[id(node)])
        )


class IndexedEvalContext(EvalContext):
    """Bitset semantics over the page's Euler-tour index.

    A locator denotes a rank bitset; ``GetChildren``/``GetDescendants``
    are mask unions over precomputed child masks / tour ranges, and node
    filters are evaluated set-at-a-time.  Atomic ``matchText`` filters
    grow a per-page match bitset lazily: each node's predicate is
    evaluated at most once per (page, Q, K, models) — across *all*
    contexts, since the memo tables live on the index.
    """

    engine_name = "indexed"

    def __init__(
        self,
        page: WebPage,
        question: Question,
        keywords: Keywords,
        models: NlpModels,
        engine: str | None = None,
    ) -> None:
        super().__init__(page, question, keywords, models)
        self._index: PageIndex = page.index()
        shared = self._index.shared_cache(self.question, self.keywords, models)
        # Hoist every memo table to page scope: a fresh context over an
        # already-analyzed page starts warm.
        self._pred_cache = shared.pred_cache
        self._locator_cache = shared.locator_cache
        self._extractor_cache = shared.extractor_cache
        self._mask_cache = shared.locator_masks
        self._filter_bitsets = shared.filter_bitsets
        self._kw_guard_best = shared.kw_guard_best

    # -- locators as bitsets ---------------------------------------------------

    def _eval_locator_uncached(self, locator: ast.Locator) -> NodeSet:
        return self._index.nodes_of_mask(self.locator_mask(locator))

    def locator_mask(self, locator: ast.Locator) -> int:
        """The rank bitset denoted by ``locator`` (memoized)."""
        cached = self._mask_cache.get(locator)
        if cached is None:
            cached = self._locator_mask_uncached(locator)
            self._mask_cache[locator] = cached
        return cached

    def _locator_mask_uncached(self, locator: ast.Locator) -> int:
        index = self._index
        if isinstance(locator, ast.GetRoot):
            return 1  # the root has rank 0
        if isinstance(locator, ast.GetChildren):
            candidates = 0
            children_mask = index.children_mask
            for rank in iter_ranks(self.locator_mask(locator.source)):
                candidates |= children_mask[rank]
            return self.filter_mask(locator.node_filter, candidates)
        if isinstance(locator, ast.GetDescendants):
            candidates = 0
            for rank in iter_ranks(self.locator_mask(locator.source)):
                candidates |= index.descendants_mask(rank)
            return self.filter_mask(locator.node_filter, candidates)
        raise TypeError(f"unknown locator: {locator!r}")

    def signature_key(self, locator: ast.Locator) -> int:
        """The rank bitset *is* the behaviour key on this engine.

        Ranks and node ids are in bijection on one page, so mask
        equality is node-set equality — the same dedup decisions as the
        reference engine's id tuples, with no node materialization.
        """
        return self.locator_mask(locator)

    def locator_frontier_keys(
        self, parent: ast.Locator, extensions: Sequence[ast.Locator]
    ) -> list[int]:
        """Sibling locator extensions over one shared candidate set.

        ``expand_locator`` emits ``GetChildren``/``GetDescendants`` of
        the same parent under every node filter; the scalar path
        re-unions the parent's child/descendant masks once *per filter*.
        Here each candidate union is built once per production kind and
        every family filter reduces it — with the ``matchText`` /
        ``matchKeyword`` plane masks for the whole threshold family
        prefilled in one broadcast (:meth:`TextPlane.match_masks`).
        Every mask written to the memo tables is bit-identical to the
        scalar path's; node tuples are *not* materialized here — pruned
        or duplicate extensions never pay for one.
        """
        results: list[int] = [0] * len(extensions)
        pending: list[int] = []
        for i, extension in enumerate(extensions):
            cached = self._mask_cache.get(extension)
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)
        if not pending:
            return results
        self._prefill_match_planes(
            [
                extensions[i].node_filter
                for i in pending
                if isinstance(
                    extensions[i], (ast.GetChildren, ast.GetDescendants)
                )
            ]
        )
        index = self._index
        candidate_masks: dict[type, int] = {}
        for i in pending:
            extension = extensions[i]
            kind = type(extension)
            if (
                kind not in (ast.GetChildren, ast.GetDescendants)
                or extension.source != parent
            ):
                results[i] = self.locator_mask(extension)
                continue
            candidates = candidate_masks.get(kind)
            if candidates is None:
                candidates = 0
                if kind is ast.GetChildren:
                    children_mask = index.children_mask
                    for rank in iter_ranks(self.locator_mask(parent)):
                        candidates |= children_mask[rank]
                else:
                    for rank in iter_ranks(self.locator_mask(parent)):
                        candidates |= index.descendants_mask(rank)
                candidate_masks[kind] = candidates
            mask = self.filter_mask(extension.node_filter, candidates)
            self._mask_cache[extension] = mask
            results[i] = mask
        return results

    def _prefill_match_planes(
        self, filters: Sequence[ast.NodeFilter]
    ) -> None:
        """Warm the plane masks a ``matchText`` filter family will need."""
        if not getattr(self.models, "batch_keyword_planes", False):
            return
        wanted: dict[bool, list[float]] = {}
        for node_filter in filters:
            if isinstance(node_filter, ast.MatchText) and isinstance(
                node_filter.pred, ast.MatchKeyword
            ):
                wanted.setdefault(node_filter.whole_subtree, []).append(
                    node_filter.pred.threshold
                )
        if not wanted:
            return
        plane = self._index.text_plane(self.models)
        for whole_subtree, thresholds in wanted.items():
            plane.match_masks(self.keywords, thresholds, whole_subtree)

    # -- filters as bitsets ----------------------------------------------------

    def filter_mask(self, node_filter: ast.NodeFilter, candidates: int) -> int:
        """Subset of ``candidates`` satisfying ``node_filter``."""
        index = self._index
        if isinstance(node_filter, ast.TrueFilter):
            return candidates
        if isinstance(node_filter, ast.IsLeaf):
            return candidates & index.leaf_mask
        if isinstance(node_filter, ast.IsElem):
            return candidates & index.elem_mask
        if isinstance(node_filter, ast.MatchText):
            return self._match_text_mask(node_filter, candidates)
        if isinstance(node_filter, ast.AndFilter):
            kept = self.filter_mask(node_filter.left, candidates)
            return self.filter_mask(node_filter.right, kept)
        if isinstance(node_filter, ast.OrFilter):
            kept = self.filter_mask(node_filter.left, candidates)
            rest = candidates & ~kept
            return kept | self.filter_mask(node_filter.right, rest)
        if isinstance(node_filter, ast.NotFilter):
            return candidates & ~self.filter_mask(node_filter.operand, candidates)
        raise TypeError(f"unknown node filter: {node_filter!r}")

    def _match_text_mask(self, node_filter: ast.MatchText, candidates: int) -> int:
        """Lazily grown match bitset for one atomic ``matchText`` filter.

        ``state`` is ``[evaluated_mask, true_mask]``: which ranks have
        been decided, and which of those matched.  Only candidates not
        yet decided hit the NLP predicate.

        Atomic ``matchKeyword`` predicates take the page's
        :class:`~repro.webtree.index.TextPlane` instead: the whole page
        is scored in one batched call (reused across thresholds) and the
        filter decides *every* rank at once — later thresholds and
        candidate sets are pure bitwise algebra.  The plane is only
        consulted for model bundles that declare
        ``batch_keyword_planes`` (the batched scores are then
        bit-identical to per-node evaluation; noisy bundles fall back to
        the scalar loop).
        """
        key = (node_filter.pred, node_filter.whole_subtree)
        state = self._filter_bitsets.get(key)
        if state is None:
            state = [0, 0]
            self._filter_bitsets[key] = state
        pending = candidates & ~state[0]
        if pending:
            index = self._index
            pred = node_filter.pred
            whole = node_filter.whole_subtree
            if isinstance(pred, ast.MatchKeyword) and getattr(
                self.models, "batch_keyword_planes", False
            ):
                plane = index.text_plane(self.models)
                matched = plane.match_mask(self.keywords, pred.threshold, whole)
                # Publish the result before the evaluated mask: a
                # concurrent thread sharing this page-scoped state must
                # never observe ranks marked decided with no match bits
                # yet (it would return a wrong empty mask).  Whole-plane
                # assignments are idempotent (every thread computes the
                # same full masks), so no lock is needed on this path.
                state[1] = matched
                state[0] = index.all_mask
            else:
                texts = index.texts
                matched = 0
                for rank in iter_ranks(pending):
                    text = index.subtree_text(rank) if whole else texts[rank]
                    if self.eval_pred(pred, text):
                        matched |= 1 << rank
                # The |= merges are read-modify-write on page-shared
                # state: two block-synthesis worker threads merging
                # disjoint pending sets would otherwise lose updates
                # (and worse, mark ranks decided with their match bits
                # dropped).  Serialize the merge; the computed bits are
                # deterministic, so double-computation is harmless.
                with index._cache_lock:
                    state[1] |= matched  # results first — see plane path
                    state[0] |= pending
        return candidates & state[1]

    # -- single-node filter queries reuse the bitsets --------------------------

    def eval_filter(self, node_filter: ast.NodeFilter, node: PageNode) -> bool:
        try:
            rank = self._index.rank(node)
        except KeyError:  # foreign node: fall back to the direct semantics
            return super().eval_filter(node_filter, node)
        return bool(self.filter_mask(node_filter, 1 << rank))


_SEGMENT_RE = re.compile(r"[,;|•\n]| - |: ")


@lru_cache(maxsize=131072)
def _segments(text: str) -> list[str]:
    """Clause-ish segments of a string, used as Substring candidates.

    Memoized: ``Substring`` candidate generation re-segments the same
    node texts for every predicate/threshold.  Callers treat the result
    as read-only.
    """
    pieces = [p.strip() for p in _SEGMENT_RE.split(text)]
    pieces = [p for p in pieces if p]
    if text.strip() and text.strip() not in pieces:
        pieces.append(text.strip())
    return pieces


def _atoms(pred: ast.NlpPred) -> list[ast.NlpPred]:
    """Atomic predicates of a compound predicate, left-to-right."""
    if isinstance(pred, (ast.AndPred, ast.OrPred)):
        return _atoms(pred.left) + _atoms(pred.right)
    if isinstance(pred, ast.NotPred):
        return _atoms(pred.operand)
    return [pred]


def run_program(
    program: ast.Program,
    page: WebPage,
    question: Question,
    keywords: Keywords,
    models: NlpModels,
    engine: str | None = None,
) -> Answer:
    """One-shot convenience wrapper: evaluate ``program`` on one page."""
    return EvalContext(page, question, keywords, models, engine).eval_program(program)
