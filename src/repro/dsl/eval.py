"""Interpreter for the WebQA DSL (denotational semantics of Section 4).

Evaluation is organized around an :class:`EvalContext` that carries the
program inputs (question Q, keywords K, webpage W), the neural model
bundle, and per-page memo tables.  Synthesis re-evaluates shared
subprograms constantly; memoizing locator and extractor denotations is
what the paper's footnote 6 alludes to and is essential for performance.
"""

from __future__ import annotations

import re

from ..nlp.models import NlpModels
from ..webtree.node import PageNode, WebPage
from . import ast
from .types import Answer, Keywords, NodeSet, Question, dedupe_ordered

#: Delimiters the Split construct may use (the paper's ``c``).
SPLIT_DELIMITERS = (",", ";", "|", "•", "/")


class EvalContext:
    """Evaluation state for one (question, keywords, webpage) triple."""

    def __init__(
        self,
        page: WebPage,
        question: Question,
        keywords: Keywords,
        models: NlpModels,
    ) -> None:
        self.page = page
        self.question = question
        self.keywords = tuple(keywords)
        self.models = models
        self._locator_cache: dict[ast.Locator, NodeSet] = {}
        self._extractor_cache: dict[tuple[ast.Extractor, NodeSet], Answer] = {}
        self._pred_cache: dict[tuple[ast.NlpPred, str], bool] = {}

    # -- NLP predicates φ over strings ----------------------------------------

    def eval_pred(self, pred: ast.NlpPred, text: str) -> bool:
        key = (pred, text)
        cached = self._pred_cache.get(key)
        if cached is None:
            cached = self._eval_pred_uncached(pred, text)
            self._pred_cache[key] = cached
        return cached

    def _eval_pred_uncached(self, pred: ast.NlpPred, text: str) -> bool:
        if isinstance(pred, ast.TruePred):
            return bool(text.strip())
        if isinstance(pred, ast.MatchKeyword):
            return self.models.match_keyword(text, self.keywords, pred.threshold)
        if isinstance(pred, ast.HasAnswer):
            return self.models.has_answer(text, self.question)
        if isinstance(pred, ast.HasEntity):
            return self.models.has_entity(text, pred.label)
        if isinstance(pred, ast.AndPred):
            return self.eval_pred(pred.left, text) and self.eval_pred(pred.right, text)
        if isinstance(pred, ast.OrPred):
            return self.eval_pred(pred.left, text) or self.eval_pred(pred.right, text)
        if isinstance(pred, ast.NotPred):
            return not self.eval_pred(pred.operand, text)
        raise TypeError(f"unknown NLP predicate: {pred!r}")

    # -- node filters φ over tree nodes --------------------------------------------

    def eval_filter(self, node_filter: ast.NodeFilter, node: PageNode) -> bool:
        if isinstance(node_filter, ast.TrueFilter):
            return True
        if isinstance(node_filter, ast.IsLeaf):
            return node.is_leaf()
        if isinstance(node_filter, ast.IsElem):
            return node.is_elem()
        if isinstance(node_filter, ast.MatchText):
            text = node.subtree_text() if node_filter.whole_subtree else node.text
            return self.eval_pred(node_filter.pred, text)
        if isinstance(node_filter, ast.AndFilter):
            return self.eval_filter(node_filter.left, node) and self.eval_filter(
                node_filter.right, node
            )
        if isinstance(node_filter, ast.OrFilter):
            return self.eval_filter(node_filter.left, node) or self.eval_filter(
                node_filter.right, node
            )
        if isinstance(node_filter, ast.NotFilter):
            return not self.eval_filter(node_filter.operand, node)
        raise TypeError(f"unknown node filter: {node_filter!r}")

    # -- section locators ν ------------------------------------------------------------

    def eval_locator(self, locator: ast.Locator) -> NodeSet:
        cached = self._locator_cache.get(locator)
        if cached is None:
            cached = self._eval_locator_uncached(locator)
            self._locator_cache[locator] = cached
        return cached

    def _eval_locator_uncached(self, locator: ast.Locator) -> NodeSet:
        if isinstance(locator, ast.GetRoot):
            return (self.page.root,)
        if isinstance(locator, ast.GetChildren):
            sources = self.eval_locator(locator.source)
            found = [
                child
                for node in sources
                for child in node.children
                if self.eval_filter(locator.node_filter, child)
            ]
            return _dedupe_nodes(found)
        if isinstance(locator, ast.GetDescendants):
            sources = self.eval_locator(locator.source)
            found = [
                descendant
                for node in sources
                for descendant in node.descendants()
                if self.eval_filter(locator.node_filter, descendant)
            ]
            return _dedupe_nodes(found)
        raise TypeError(f"unknown locator: {locator!r}")

    # -- guards ψ -----------------------------------------------------------------------

    def eval_guard(self, guard: ast.Guard) -> tuple[bool, NodeSet]:
        """Guard denotation: (fired?, located nodes)."""
        nodes = self.eval_locator(guard.locator)
        if isinstance(guard, ast.IsSingleton):
            return len(nodes) == 1, nodes
        if isinstance(guard, ast.Sat):
            fired = any(self.eval_pred(guard.pred, node.text) for node in nodes)
            return fired, nodes
        raise TypeError(f"unknown guard: {guard!r}")

    # -- extractors e --------------------------------------------------------------------

    def eval_extractor(self, extractor: ast.Extractor, nodes: NodeSet) -> Answer:
        key = (extractor, nodes)
        cached = self._extractor_cache.get(key)
        if cached is None:
            cached = self._eval_extractor_uncached(extractor, nodes)
            self._extractor_cache[key] = cached
        return cached

    def _eval_extractor_uncached(
        self, extractor: ast.Extractor, nodes: NodeSet
    ) -> Answer:
        if isinstance(extractor, ast.ExtractContent):
            return dedupe_ordered([n.text for n in nodes])
        if isinstance(extractor, ast.Split):
            source = self.eval_extractor(extractor.source, nodes)
            pieces: list[str] = []
            for item in source:
                pieces.extend(p.strip() for p in item.split(extractor.delimiter))
            return dedupe_ordered(pieces)
        if isinstance(extractor, ast.Filter):
            source = self.eval_extractor(extractor.source, nodes)
            return dedupe_ordered(
                [s for s in source if self.eval_pred(extractor.pred, s)]
            )
        if isinstance(extractor, ast.Substring):
            source = self.eval_extractor(extractor.source, nodes)
            found: list[str] = []
            for item in source:
                found.extend(self.substrings(extractor.pred, item, extractor.k))
            return dedupe_ordered(found)
        raise TypeError(f"unknown extractor: {extractor!r}")

    # -- Substring candidate generation -----------------------------------------------

    def substrings(self, pred: ast.NlpPred, text: str, k: int) -> list[str]:
        """Top-k substrings of ``text`` satisfying ``pred``.

        Atomic predicates have natural span generators (entity spans, QA
        answer spans, keyword-scored segments); compound predicates pool
        the candidates of their atoms and keep those on which the full
        predicate holds.
        """
        if isinstance(pred, ast.HasEntity):
            return self.models.entity_substrings(text, pred.label, k)
        if isinstance(pred, ast.HasAnswer):
            return self.models.answer_substrings(text, self.question, k)
        if isinstance(pred, ast.MatchKeyword):
            segments = _segments(text)
            scored = [
                (self.models.keyword_similarity(seg, self.keywords), seg)
                for seg in segments
            ]
            winners = [seg for score, seg in scored if score >= pred.threshold]
            winners.sort(
                key=lambda seg: -self.models.keyword_similarity(seg, self.keywords)
            )
            return winners[:k] if k > 0 else winners
        if isinstance(pred, ast.TruePred):
            return [text] if text.strip() else []
        # Compound predicates: union of atomic candidates, filtered.
        candidates: list[str] = []
        for atom in _atoms(pred):
            candidates.extend(self.substrings(atom, text, 0) or _segments(text))
        kept = [c for c in dedupe_ordered(candidates) if self.eval_pred(pred, c)]
        return kept[:k] if k > 0 else kept

    # -- programs -------------------------------------------------------------------------

    def eval_branch(self, branch: ast.Branch) -> Answer | None:
        """Branch result if its guard fires, else ``None``."""
        fired, nodes = self.eval_guard(branch.guard)
        if not fired:
            return None
        return self.eval_extractor(branch.extractor, nodes)

    def eval_program(self, program: ast.Program) -> Answer:
        for branch in program.branches:
            result = self.eval_branch(branch)
            if result is not None:
                return result
        return ()


def _dedupe_nodes(nodes: list[PageNode]) -> NodeSet:
    seen: set[int] = set()
    unique: list[PageNode] = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    return tuple(unique)


_SEGMENT_RE = re.compile(r"[,;|•\n]| - |: ")


def _segments(text: str) -> list[str]:
    """Clause-ish segments of a string, used as Substring candidates."""
    pieces = [p.strip() for p in _SEGMENT_RE.split(text)]
    pieces = [p for p in pieces if p]
    if text.strip() and text.strip() not in pieces:
        pieces.append(text.strip())
    return pieces


def _atoms(pred: ast.NlpPred) -> list[ast.NlpPred]:
    """Atomic predicates of a compound predicate, left-to-right."""
    if isinstance(pred, (ast.AndPred, ast.OrPred)):
        return _atoms(pred.left) + _atoms(pred.right)
    if isinstance(pred, ast.NotPred):
        return _atoms(pred.operand)
    return [pred]


def run_program(
    program: ast.Program,
    page: WebPage,
    question: Question,
    keywords: Keywords,
    models: NlpModels,
) -> Answer:
    """One-shot convenience wrapper: evaluate ``program`` on one page."""
    return EvalContext(page, question, keywords, models).eval_program(program)
