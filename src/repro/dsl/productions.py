"""Grammar productions for bottom-up enumeration (``ApplyProduction``).

The synthesis algorithms of Section 5 grow programs by applying DSL
productions to complete subterms (Figure 9 line 8, Figure 10 line 7).
This module materializes those productions against finite *pools* of
predicate/filter instantiations described by a :class:`ProductionConfig`:

* keyword thresholds are discretized (paper: step 0.05 over [0, 1]);
* entity labels range over the NER model's label set;
* split delimiters range over :data:`~repro.dsl.eval.SPLIT_DELIMITERS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..nlp.ner import ENTITY_LABELS
from . import ast
from .eval import SPLIT_DELIMITERS


def default_thresholds() -> tuple[float, ...]:
    """The default keyword-similarity threshold grid.

    Coarser than the paper's 0.05 grid to keep full-corpus experiments
    fast; the fine grid is available via :func:`fine_thresholds`.
    """
    return (0.55, 0.70, 0.85)


def fine_thresholds(step: float = 0.05) -> tuple[float, ...]:
    """The paper's threshold grid: multiples of ``step`` in (0, 1)."""
    count = round(1.0 / step)
    return tuple(round(i * step, 2) for i in range(1, count))


@dataclass(frozen=True)
class ProductionConfig:
    """Finite instantiation pools for every grammar parameter."""

    keyword_thresholds: tuple[float, ...] = field(default_factory=default_thresholds)
    entity_labels: tuple[str, ...] = ENTITY_LABELS
    delimiters: tuple[str, ...] = SPLIT_DELIMITERS
    substring_ks: tuple[int, ...] = (1,)
    #: Include ¬matchKeyword predicates (useful in Filter to drop headers).
    use_negation: bool = True
    #: Allow matchText over the whole subtree (the paper's ``b`` flag).
    use_subtree_text: bool = True
    #: Include two-atom conjunctions (the grammar's φ ∧ φ, Figure 5) in
    #: the Filter/Substring pools and conjunctive node filters.  Off by
    #: default: it grows the pools quadratically.
    use_conjunction: bool = False

    # -- instantiation pools --------------------------------------------------

    def atomic_preds(self) -> list[ast.NlpPred]:
        """Atomic NLP predicates available to the enumerator."""
        preds: list[ast.NlpPred] = [
            ast.MatchKeyword(t) for t in self.keyword_thresholds
        ]
        preds.append(ast.HasAnswer())
        preds.extend(ast.HasEntity(label) for label in self.entity_labels)
        return preds

    def filter_preds(self) -> list[ast.NlpPred]:
        """Predicates usable in Filter/Substring (atoms plus negations)."""
        preds = self.atomic_preds()
        if self.use_negation:
            preds.extend(
                ast.NotPred(ast.MatchKeyword(t)) for t in self.keyword_thresholds
            )
        if self.use_conjunction:
            # Entity type AND keyword relevance: "a PERSON near keywords".
            preds.extend(
                ast.AndPred(ast.HasEntity(label), ast.MatchKeyword(t))
                for label in self.entity_labels
                for t in self.keyword_thresholds
            )
        return preds

    def node_filters(self) -> list[ast.NodeFilter]:
        """Node filters available to GetChildren/GetDescendants."""
        filters: list[ast.NodeFilter] = [
            ast.TrueFilter(),
            ast.IsLeaf(),
            ast.IsElem(),
        ]
        flags = (False, True) if self.use_subtree_text else (False,)
        for pred in self.atomic_preds():
            for whole_subtree in flags:
                filters.append(ast.MatchText(pred, whole_subtree))
        if self.use_conjunction:
            # Leaf nodes whose text matches a predicate — the combination
            # the paper's GetLeaves-then-filter idiom expresses.
            filters.extend(
                ast.AndFilter(ast.IsLeaf(), ast.MatchText(pred, False))
                for pred in self.atomic_preds()
            )
        return filters

    def guard_preds(self) -> list[ast.NlpPred]:
        """Predicates usable inside Sat guards (⊤ plus the atoms)."""
        return [ast.TruePred(), *self.atomic_preds()]


# The pools are pure functions of the (frozen, hashable) config but the
# enumerators re-request them for every expanded term; cache them once,
# interned so every produced term is canonical (see repro.dsl.ast).


@lru_cache(maxsize=None)
def _filter_pred_pool(config: ProductionConfig) -> tuple[ast.NlpPred, ...]:
    return tuple(ast.intern(p) for p in config.filter_preds())


@lru_cache(maxsize=None)
def _node_filter_pool(config: ProductionConfig) -> tuple[ast.NodeFilter, ...]:
    return tuple(ast.intern(f) for f in config.node_filters())


@lru_cache(maxsize=None)
def _guard_pred_pool(config: ProductionConfig) -> tuple[ast.NlpPred, ...]:
    return tuple(ast.intern(p) for p in config.guard_preds())


# The three expansion functions below are lru-cached on the (interned,
# cached-hash) parent term and the frozen config: the frontier search
# re-expands the same parents constantly — across branch blocks, refits
# and benchmark rounds — and re-interning a whole sibling family costs a
# structural hash per candidate.  Families are returned as tuples so the
# cached value is immutable.


@lru_cache(maxsize=131072)
def expand_extractor(
    extractor: ast.Extractor, config: ProductionConfig
) -> tuple[ast.Extractor, ...]:
    """All one-step extensions of a complete extractor (``ApplyProduction``).

    Monotonicity note (Section 5): every returned extractor is built *on
    top of* ``extractor``, hence its recall on any example set is at most
    the recall of ``extractor`` — the invariant behind UB pruning.
    """
    preds = _filter_pred_pool(config)
    extensions: list[ast.Extractor] = []
    extensions.extend(ast.intern(ast.Split(extractor, c)) for c in config.delimiters)
    extensions.extend(ast.intern(ast.Filter(extractor, p)) for p in preds)
    for pred in preds:
        if isinstance(pred, ast.NotPred):
            continue  # negations make poor substring generators
        extensions.extend(
            ast.intern(ast.Substring(extractor, pred, k)) for k in config.substring_ks
        )
    return tuple(extensions)


@lru_cache(maxsize=131072)
def expand_locator(
    locator: ast.Locator, config: ProductionConfig
) -> tuple[ast.Locator, ...]:
    """All one-step extensions of a complete section locator."""
    extensions: list[ast.Locator] = []
    for node_filter in _node_filter_pool(config):
        extensions.append(ast.intern(ast.GetChildren(locator, node_filter)))
        extensions.append(ast.intern(ast.GetDescendants(locator, node_filter)))
    return tuple(extensions)


@lru_cache(maxsize=131072)
def gen_guards(
    locator: ast.Locator, config: ProductionConfig
) -> tuple[ast.Guard, ...]:
    """All guards over one section locator (``GenGuards``, Figure 10)."""
    guards: list[ast.Guard] = [ast.intern(ast.IsSingleton(locator))]
    guards.extend(
        ast.intern(ast.Sat(locator, pred)) for pred in _guard_pred_pool(config)
    )
    return tuple(guards)
