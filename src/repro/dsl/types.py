"""Type annotations for DSL symbols (paper Figure 6) and shared aliases.

The paper's type table::

    p :: Question × Keywords × Webpage → Set<String>
    ψ :: Bool × Set<Node>        e :: Set<String>
    ν :: Set<Node>               z :: String
    x :: Set<Node>               n :: Node
    φ (node filter), φ (NLP predicate) :: Bool

Python-side, a program's output is represented as a *document-ordered
tuple of distinct strings* (``Answer``): sets in the paper's semantics,
ordered here only for determinism and readability.
"""

from __future__ import annotations

from typing import Tuple

from ..webtree.node import PageNode

#: A program's output: document-ordered distinct answer strings.
Answer = Tuple[str, ...]

#: The node set computed by a section locator or bound to the extractor
#: variable x.
NodeSet = Tuple[PageNode, ...]

#: Inputs Q and K of a WebQA program.
Question = str
Keywords = Tuple[str, ...]


def dedupe_ordered(items: list[str]) -> Answer:
    """Distinct strings in first-occurrence order, blanks dropped.

    >>> dedupe_ordered(["b", "a", "b", ""])
    ('b', 'a')
    """
    seen: set[str] = set()
    result: list[str] = []
    for item in items:
        item = item.strip()
        if item and item not in seen:
            seen.add(item)
            result.append(item)
    return tuple(result)
