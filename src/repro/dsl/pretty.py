"""Pretty-printer producing the paper's surface syntax for DSL terms.

The output matches the notation of Figures 5 and the worked examples in
Section 2, e.g.::

    GetLeaves(GetDescendants(r, λz. matchKeyword(z, K, 0.70)))
    λx. GetEntity(Filter(Split(ExtractContent(x), ','), λz. matchKeyword(z, K, 0.70)), ORG)
"""

from __future__ import annotations

from . import ast


def pretty_pred(pred: ast.NlpPred) -> str:
    if isinstance(pred, ast.MatchKeyword):
        return f"matchKeyword(z, K, {pred.threshold:.2f})"
    if isinstance(pred, ast.HasAnswer):
        return "hasAnswer(z, Q)"
    if isinstance(pred, ast.HasEntity):
        return f"hasEntity(z, {pred.label})"
    if isinstance(pred, ast.TruePred):
        return "⊤"
    if isinstance(pred, ast.AndPred):
        return f"({pretty_pred(pred.left)} ∧ {pretty_pred(pred.right)})"
    if isinstance(pred, ast.OrPred):
        return f"({pretty_pred(pred.left)} ∨ {pretty_pred(pred.right)})"
    if isinstance(pred, ast.NotPred):
        return f"¬{pretty_pred(pred.operand)}"
    raise TypeError(f"unknown predicate: {pred!r}")


def pretty_filter(node_filter: ast.NodeFilter) -> str:
    if isinstance(node_filter, ast.IsLeaf):
        return "isLeaf(n)"
    if isinstance(node_filter, ast.IsElem):
        return "isElem(n)"
    if isinstance(node_filter, ast.MatchText):
        flag = "true" if node_filter.whole_subtree else "false"
        return f"matchText(n, λz.{pretty_pred(node_filter.pred)}, {flag})"
    if isinstance(node_filter, ast.TrueFilter):
        return "⊤"
    if isinstance(node_filter, ast.AndFilter):
        return f"({pretty_filter(node_filter.left)} ∧ {pretty_filter(node_filter.right)})"
    if isinstance(node_filter, ast.OrFilter):
        return f"({pretty_filter(node_filter.left)} ∨ {pretty_filter(node_filter.right)})"
    if isinstance(node_filter, ast.NotFilter):
        return f"¬{pretty_filter(node_filter.operand)}"
    raise TypeError(f"unknown node filter: {node_filter!r}")


def pretty_locator(locator: ast.Locator) -> str:
    if isinstance(locator, ast.GetRoot):
        return "GetRoot(W)"
    if isinstance(locator, ast.GetChildren):
        return (
            f"GetChildren({pretty_locator(locator.source)}, "
            f"λn.{pretty_filter(locator.node_filter)})"
        )
    if isinstance(locator, ast.GetDescendants):
        return (
            f"GetDescendants({pretty_locator(locator.source)}, "
            f"λn.{pretty_filter(locator.node_filter)})"
        )
    raise TypeError(f"unknown locator: {locator!r}")


def pretty_guard(guard: ast.Guard) -> str:
    if isinstance(guard, ast.Sat):
        return f"Sat({pretty_locator(guard.locator)}, λz.{pretty_pred(guard.pred)})"
    if isinstance(guard, ast.IsSingleton):
        return f"IsSingleton({pretty_locator(guard.locator)})"
    raise TypeError(f"unknown guard: {guard!r}")


def pretty_extractor(extractor: ast.Extractor) -> str:
    if isinstance(extractor, ast.ExtractContent):
        return "ExtractContent(x)"
    if isinstance(extractor, ast.Split):
        return f"Split({pretty_extractor(extractor.source)}, {extractor.delimiter!r})"
    if isinstance(extractor, ast.Filter):
        return (
            f"Filter({pretty_extractor(extractor.source)}, "
            f"λz.{pretty_pred(extractor.pred)})"
        )
    if isinstance(extractor, ast.Substring):
        return (
            f"Substring({pretty_extractor(extractor.source)}, "
            f"λz.{pretty_pred(extractor.pred)}, {extractor.k})"
        )
    raise TypeError(f"unknown extractor: {extractor!r}")


def pretty_branch(branch: ast.Branch) -> str:
    return f"{pretty_guard(branch.guard)} → λx.{pretty_extractor(branch.extractor)}"


def pretty_program(program: ast.Program) -> str:
    """Full program in the paper's guarded-expression notation.

    >>> from repro.dsl import ast
    >>> p = ast.Program((ast.Branch(ast.Sat(ast.GetRoot()), ast.ExtractContent()),))
    >>> pretty_program(p)
    'λQ,K,W. { Sat(GetRoot(W), λz.⊤) → λx.ExtractContent(x) }'
    """
    body = "; ".join(pretty_branch(b) for b in program.branches)
    return f"λQ,K,W. {{ {body} }}"


def pretty(node: ast.AnyNode) -> str:
    """Pretty-print any DSL term by dispatching on its class."""
    if isinstance(node, ast.Program):
        return pretty_program(node)
    if isinstance(node, ast.Branch):
        return pretty_branch(node)
    if isinstance(node, ast.Guard):
        return pretty_guard(node)
    if isinstance(node, ast.Extractor):
        return pretty_extractor(node)
    if isinstance(node, ast.Locator):
        return pretty_locator(node)
    if isinstance(node, ast.NodeFilter):
        return pretty_filter(node)
    if isinstance(node, ast.NlpPred):
        return pretty_pred(node)
    raise TypeError(f"not a DSL term: {node!r}")
