"""Compiled serving plans for synthesized programs.

Synthesis produces one :class:`~repro.dsl.ast.Program` that is then
served over many pages (``WebQA.predict`` / ``predict_batch``, the
experiment sweeps, any production deployment).  The tree-walking
interpreter re-dispatches on AST node types for every page; this module
**compiles** a program once into a flat plan of branch steps that runs
directly against the indexed engine's precomputed masks:

* every branch is flattened to ``(locator, guard test, extractor)`` with
  all terms interned, so per-page memo probes short-circuit on object
  identity;
* on the indexed engine, guard tests are bitset arithmetic over the
  page's cached locator masks — ``IsSingleton`` is a two-op popcount
  check (``mask & (mask - 1)``), and ``Sat(ν, φ)`` reuses the
  ``matchText`` filter machinery (including the batched
  ``matchKeyword`` text planes), so a whole guard often evaluates
  without touching a single Python-level node object;
* located nodes are materialized only for the one branch that fires.

The compiled plan is semantically identical to
:meth:`EvalContext.eval_program` — same first-firing-branch rule, same
memo tables, bit-for-bit equal outputs (pinned by the differential
tests in ``tests/dsl/test_compile.py``).  Contexts from the reference
engine fall back to the interpreter per branch.
"""

from __future__ import annotations

from typing import Sequence

from . import ast
from .eval import EvalContext, IndexedEvalContext
from .types import Answer


class CompiledBranch:
    """One flattened branch: locator + guard test + extractor."""

    __slots__ = ("branch", "locator", "extractor", "is_singleton", "sat_filter")

    def __init__(self, branch: ast.Branch) -> None:
        guard = ast.intern(branch.guard)
        self.branch = ast.Branch(guard, ast.intern(branch.extractor))
        self.locator = ast.intern(guard.locator)
        self.extractor = self.branch.extractor
        self.is_singleton = isinstance(guard, ast.IsSingleton)
        if isinstance(guard, ast.Sat):
            # ``Sat(ν, φ)`` fires iff some located node's own text
            # satisfies φ — exactly a ``matchText(φ, b=false)`` filter
            # kept non-empty, so the compiled test reuses the filter
            # bitset machinery (and its per-page caches).
            self.sat_filter: ast.MatchText | None = ast.intern(
                ast.MatchText(guard.pred, False)
            )
        elif self.is_singleton:
            self.sat_filter = None
        else:
            raise TypeError(f"unknown guard: {guard!r}")


class CompiledProgram:
    """A program compiled to a flat serving plan.

    ``run(ctx)`` evaluates against an existing
    :class:`~repro.dsl.eval.EvalContext` (sharing all its memo tables);
    ``run_on_page`` is the one-shot convenience mirror of
    :func:`~repro.dsl.eval.run_program`.
    """

    __slots__ = ("program", "steps")

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.steps: tuple[CompiledBranch, ...] = tuple(
            CompiledBranch(branch) for branch in program.branches
        )

    def run(self, ctx: EvalContext) -> Answer:
        """Evaluate the plan on one page context.

        First branch whose guard fires wins, like
        :meth:`EvalContext.eval_program`; ``()`` when none fires.
        """
        if isinstance(ctx, IndexedEvalContext):
            for step in self.steps:
                mask = ctx.locator_mask(step.locator)
                if step.is_singleton:
                    fired = mask != 0 and mask & (mask - 1) == 0
                else:
                    fired = (
                        mask != 0
                        and ctx.filter_mask(step.sat_filter, mask) != 0
                    )
                if fired:
                    return ctx.eval_extractor(
                        step.extractor, ctx.eval_locator(step.locator)
                    )
            return ()
        for step in self.steps:  # reference engine: interpreter semantics
            result = ctx.eval_branch(step.branch)
            if result is not None:
                return result
        return ()

    def run_on_page(
        self,
        page,
        question: str,
        keywords: Sequence[str],
        models,
        engine: str | None = None,
    ) -> Answer:
        """One-shot evaluation on a page (builds/reuses a context)."""
        ctx = EvalContext(page, question, tuple(keywords), models, engine)
        return self.run(ctx)


def compile_program(program: ast.Program) -> CompiledProgram:
    """Compile ``program`` into a flat serving plan."""
    return CompiledProgram(program)
