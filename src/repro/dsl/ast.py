"""AST of the WebQA DSL (paper Figure 5).

The grammar, verbatim from the paper::

    Program   p  ::= λQ,K,W. {ψ1 → λx.e1, ..., ψn → λx.en}
    Guard     ψ  ::= Sat(ν, λz.φ) | IsSingleton(ν)
    Extractor e  ::= ExtractContent(x) | Substring(e, λz.φ, k)
                   | Filter(e, λz.φ) | Split(e, c)
    Locator   ν  ::= GetRoot(W) | GetChildren(ν, λn.φ) | GetDescendants(ν, λn.φ)
    NodeFilter φn ::= isLeaf(n) | isElem(n) | matchText(n, λz.φ, b)
                   | ⊤ | φn ∧ φn | φn ∨ φn | ¬φn
    NlpPred   φ  ::= matchKeyword(z, K, t) | hasAnswer(z, Q) | hasEntity(z, l)
                   | ⊤ | φ ∧ φ | φ ∨ φ | ¬φ

All nodes are immutable frozen dataclasses with structural equality, so
they can serve as memoization keys during synthesis.  The question ``Q``
and keyword set ``K`` are *program inputs*, not AST constants: the AST
refers to them implicitly and they are supplied at evaluation time.

Synthesis hammers these terms as dictionary keys (locator caches,
footnote-6 memo tables, observational-equivalence sets), so two
additions keep that cheap:

* every term's structural hash is computed once and cached on the
  instance (:func:`_cached_hash` installed as ``__hash__`` below);
* :func:`intern` hash-conses terms to a canonical instance, making
  repeat dictionary probes identity comparisons, and :func:`term_key`
  names each distinct structure with a small integer usable in
  composite memo keys.
"""

from __future__ import annotations

import itertools as _itertools
from dataclasses import dataclass, field, fields
from typing import Union

# ---------------------------------------------------------------------------
# NLP predicates φ (over strings z)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NlpPred:
    """Base class for string predicates."""


@dataclass(frozen=True)
class MatchKeyword(NlpPred):
    """``matchKeyword(z, K, t)`` — similarity of z to some k ∈ K is ≥ t."""

    threshold: float


@dataclass(frozen=True)
class HasAnswer(NlpPred):
    """``hasAnswer(z, Q)`` — the QA model finds Q's answer in z."""


@dataclass(frozen=True)
class HasEntity(NlpPred):
    """``hasEntity(z, l)`` — z contains an entity of type ``label``."""

    label: str


@dataclass(frozen=True)
class TruePred(NlpPred):
    """The ⊤ predicate."""


@dataclass(frozen=True)
class AndPred(NlpPred):
    left: NlpPred
    right: NlpPred


@dataclass(frozen=True)
class OrPred(NlpPred):
    left: NlpPred
    right: NlpPred


@dataclass(frozen=True)
class NotPred(NlpPred):
    operand: NlpPred


# ---------------------------------------------------------------------------
# Node filters φ (over tree nodes n)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeFilter:
    """Base class for tree-node predicates."""


@dataclass(frozen=True)
class IsLeaf(NodeFilter):
    """``isLeaf(n)`` — n has no children."""


@dataclass(frozen=True)
class IsElem(NodeFilter):
    """``isElem(n)`` — n is a list item or table row."""


@dataclass(frozen=True)
class MatchText(NodeFilter):
    """``matchText(n, λz.φ, b)`` — apply φ to n's text.

    ``whole_subtree`` is the paper's boolean ``b``: when true the predicate
    sees the text of the entire subtree rooted at n, otherwise only n's own
    text.
    """

    pred: NlpPred
    whole_subtree: bool = False


@dataclass(frozen=True)
class TrueFilter(NodeFilter):
    """The ⊤ node filter."""


@dataclass(frozen=True)
class AndFilter(NodeFilter):
    left: NodeFilter
    right: NodeFilter


@dataclass(frozen=True)
class OrFilter(NodeFilter):
    left: NodeFilter
    right: NodeFilter


@dataclass(frozen=True)
class NotFilter(NodeFilter):
    operand: NodeFilter


# ---------------------------------------------------------------------------
# Section locators ν
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Locator:
    """Base class for section locators."""


@dataclass(frozen=True)
class GetRoot(Locator):
    """``GetRoot(W)`` — the singleton set {root of W}."""


@dataclass(frozen=True)
class GetChildren(Locator):
    """``GetChildren(ν, λn.φ)`` — children of ν's nodes satisfying φ."""

    source: Locator
    node_filter: NodeFilter


@dataclass(frozen=True)
class GetDescendants(Locator):
    """``GetDescendants(ν, λn.φ)`` — descendants of ν's nodes satisfying φ."""

    source: Locator
    node_filter: NodeFilter


# ---------------------------------------------------------------------------
# Guards ψ
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Guard:
    """Base class for guards; every guard wraps a section locator."""

    locator: Locator


@dataclass(frozen=True)
class Sat(Guard):
    """``Sat(ν, λz.φ)`` — some located node's text satisfies φ.

    Evaluates to (bool, located nodes); the nodes are bound to the
    extractor variable x when the guard fires.
    """

    pred: NlpPred = field(default_factory=TruePred)


@dataclass(frozen=True)
class IsSingleton(Guard):
    """``IsSingleton(ν)`` — the located node set has exactly one node."""


# ---------------------------------------------------------------------------
# Extractors e
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Extractor:
    """Base class for extractors (set-of-strings transformers)."""


@dataclass(frozen=True)
class ExtractContent(Extractor):
    """``ExtractContent(x)`` — the text of each located node."""


@dataclass(frozen=True)
class Substring(Extractor):
    """``Substring(e, λz.φ, k)`` — top-k substrings of each string by φ."""

    source: Extractor
    pred: NlpPred
    k: int = 1


@dataclass(frozen=True)
class Filter(Extractor):
    """``Filter(e, λz.φ)`` — keep only strings satisfying φ."""

    source: Extractor
    pred: NlpPred


@dataclass(frozen=True)
class Split(Extractor):
    """``Split(e, c)`` — split every string on delimiter character c."""

    source: Extractor
    delimiter: str


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Branch:
    """One guarded branch ``ψ → λx.e``."""

    guard: Guard
    extractor: Extractor


@dataclass(frozen=True)
class Program:
    """A full WebQA program: an ordered sequence of guarded branches.

    Semantics (paper Section 4): guards are tried in order; the first true
    guard's extractor runs on the located nodes; if no guard fires the
    program returns the empty set.
    """

    branches: tuple[Branch, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.branches, tuple):
            object.__setattr__(self, "branches", tuple(self.branches))


AnyNode = Union[NlpPred, NodeFilter, Locator, Guard, Extractor, Branch, Program]


# ---------------------------------------------------------------------------
# Structural-hash caching and interning
# ---------------------------------------------------------------------------


def _cached_hash(self) -> int:
    """Structural hash, computed once per instance.

    Frozen dataclasses recompute their (recursive) hash on every lookup;
    caching it in the instance ``__dict__`` makes deep terms O(1) keys
    after first use.  Nested terms use their own cached hashes, so even
    the first hash of a new term touches each subterm once overall.
    """
    cached = self.__dict__.get("_hash")
    if cached is None:
        values = tuple(getattr(self, f.name) for f in fields(self))
        cached = hash((type(self), values))
        object.__setattr__(self, "_hash", cached)
    return cached


_AST_CLASSES = (
    MatchKeyword, HasAnswer, HasEntity, TruePred, AndPred, OrPred, NotPred,
    IsLeaf, IsElem, MatchText, TrueFilter, AndFilter, OrFilter, NotFilter,
    GetRoot, GetChildren, GetDescendants,
    Sat, IsSingleton,
    ExtractContent, Substring, Filter, Split,
    Branch, Program,
)

for _cls in _AST_CLASSES:
    _cls.__hash__ = _cached_hash  # type: ignore[assignment]


_intern_table: dict[AnyNode, AnyNode] = {}
#: Intern-table bound: hash-consing is an identity optimization, so the
#: table may be dropped wholesale once it grows past the working set of
#: any realistic synthesis run (terms stay valid, later probes just
#: re-canonicalize).
_INTERN_LIMIT = 1 << 20
_term_counter = _itertools.count()


def intern(term: AnyNode) -> AnyNode:
    """The canonical instance structurally equal to ``term``.

    The grammar productions intern everything they emit, so all equal
    terms flowing through synthesis are the *same* object and dictionary
    probes short-circuit on identity before any deep comparison.
    """
    canonical = _intern_table.get(term)
    if canonical is None:
        if len(_intern_table) >= _INTERN_LIMIT:
            _intern_table.clear()
        _intern_table[term] = term
        canonical = term
    return canonical


def term_key(term: AnyNode) -> int:
    """A small integer naming ``term``'s structure.

    Keys are cached on the instances themselves (like the structural
    hash), assigned from a monotone counter via the canonical interned
    instance.  Distinct structures never share a key; a structure seen
    again after the intern table was dropped gets a fresh key, which
    only costs a memo miss, never a false hit.
    """
    key = term.__dict__.get("_term_key")
    if key is not None:
        return key
    canonical = intern(term)
    key = canonical.__dict__.get("_term_key")
    if key is None:
        key = next(_term_counter)
        object.__setattr__(canonical, "_term_key", key)
    if canonical is not term:
        object.__setattr__(term, "_term_key", key)
    return key


def get_entity(source: Extractor, label: str, k: int = 1) -> Substring:
    """The paper's ``GetEntity`` syntactic sugar (footnote 3).

    ``GetEntity(e, l)`` ≡ ``Substring(e, λz.hasEntity(z, l), k)``.
    """
    return Substring(source, HasEntity(label), k)


def get_leaves(source: Locator) -> GetDescendants:
    """The paper's ``GetLeaves`` syntactic sugar (footnote 2).

    ``GetLeaves(ν)`` ≡ ``GetDescendants(ν, λn.isLeaf(n))``.
    """
    return GetDescendants(source, IsLeaf())
