"""Size and depth metrics over DSL terms.

Depth limits bound the synthesis search space (the paper's guard-depth 7
and extractor-depth 5 hyperparameters, Section 7); AST size is the
tie-breaking heuristic of the "Shortest" selection baseline (Section 8.3).
"""

from __future__ import annotations

from . import ast


def pred_size(pred: ast.NlpPred) -> int:
    if isinstance(pred, (ast.AndPred, ast.OrPred)):
        return 1 + pred_size(pred.left) + pred_size(pred.right)
    if isinstance(pred, ast.NotPred):
        return 1 + pred_size(pred.operand)
    return 1


def filter_size(node_filter: ast.NodeFilter) -> int:
    if isinstance(node_filter, (ast.AndFilter, ast.OrFilter)):
        return 1 + filter_size(node_filter.left) + filter_size(node_filter.right)
    if isinstance(node_filter, ast.NotFilter):
        return 1 + filter_size(node_filter.operand)
    if isinstance(node_filter, ast.MatchText):
        return 1 + pred_size(node_filter.pred)
    return 1


def locator_size(locator: ast.Locator) -> int:
    if isinstance(locator, (ast.GetChildren, ast.GetDescendants)):
        return 1 + locator_size(locator.source) + filter_size(locator.node_filter)
    return 1


def locator_depth(locator: ast.Locator) -> int:
    """Chain length of a locator: GetRoot has depth 1.

    >>> locator_depth(ast.GetChildren(ast.GetRoot(), ast.TrueFilter()))
    2
    """
    if isinstance(locator, (ast.GetChildren, ast.GetDescendants)):
        return 1 + locator_depth(locator.source)
    return 1


def extractor_size(extractor: ast.Extractor) -> int:
    if isinstance(extractor, ast.Split):
        return 1 + extractor_size(extractor.source)
    if isinstance(extractor, ast.Filter):
        return 1 + extractor_size(extractor.source) + pred_size(extractor.pred)
    if isinstance(extractor, ast.Substring):
        return 1 + extractor_size(extractor.source) + pred_size(extractor.pred)
    return 1


def extractor_depth(extractor: ast.Extractor) -> int:
    """Chain length of an extractor: ExtractContent has depth 1."""
    if isinstance(extractor, (ast.Split, ast.Filter, ast.Substring)):
        return 1 + extractor_depth(extractor.source)
    return 1


def guard_size(guard: ast.Guard) -> int:
    size = 1 + locator_size(guard.locator)
    if isinstance(guard, ast.Sat):
        size += pred_size(guard.pred)
    return size


def branch_size(branch: ast.Branch) -> int:
    return guard_size(branch.guard) + extractor_size(branch.extractor)


def program_size(program: ast.Program) -> int:
    """Total AST size — the "Shortest" baseline's ranking key."""
    return sum(branch_size(b) for b in program.branches)
