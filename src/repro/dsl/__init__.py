"""The WebQA neurosymbolic DSL (paper Section 4).

- :mod:`repro.dsl.ast` — the grammar of Figure 5 as frozen dataclasses.
- :mod:`repro.dsl.eval` — the interpreter (:class:`EvalContext`).
- :mod:`repro.dsl.productions` — ``ApplyProduction`` for bottom-up search.
- :mod:`repro.dsl.pretty` — paper-notation pretty printer.
- :mod:`repro.dsl.depth` — size/depth metrics.
"""

from . import ast
from .compile import CompiledProgram, compile_program
from .parser import DslSyntaxError, parse_extractor, parse_locator, parse_program
from .serialize import dumps, load_program, loads, save_program
from .depth import (
    extractor_depth,
    extractor_size,
    guard_size,
    locator_depth,
    locator_size,
    program_size,
)
from .eval import (
    DEFAULT_ENGINE,
    ENGINES,
    SPLIT_DELIMITERS,
    EvalContext,
    IndexedEvalContext,
    ReferenceEvalContext,
    resolve_engine,
    run_program,
)
from .pretty import pretty, pretty_program
from .productions import (
    ProductionConfig,
    default_thresholds,
    expand_extractor,
    expand_locator,
    fine_thresholds,
    gen_guards,
)
from .types import Answer, Keywords, NodeSet, Question, dedupe_ordered

__all__ = [
    "ast",
    "CompiledProgram",
    "compile_program",
    "DslSyntaxError",
    "parse_extractor",
    "parse_locator",
    "parse_program",
    "dumps",
    "loads",
    "save_program",
    "load_program",
    "EvalContext",
    "IndexedEvalContext",
    "ReferenceEvalContext",
    "resolve_engine",
    "DEFAULT_ENGINE",
    "ENGINES",
    "run_program",
    "SPLIT_DELIMITERS",
    "pretty",
    "pretty_program",
    "ProductionConfig",
    "default_thresholds",
    "fine_thresholds",
    "expand_extractor",
    "expand_locator",
    "gen_guards",
    "extractor_depth",
    "extractor_size",
    "guard_size",
    "locator_depth",
    "locator_size",
    "program_size",
    "Answer",
    "Keywords",
    "NodeSet",
    "Question",
    "dedupe_ordered",
]
