"""Result containers shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.scores import Score, mean_score


@dataclass(frozen=True)
class TaskResult:
    """One tool's scores on one task's test set."""

    task_id: str
    domain: str
    tool: str
    score: Score
    seconds: float = 0.0
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DomainSummary:
    """Per-domain aggregation of task results (one Table 2 row group)."""

    domain: str
    tool: str
    score: Score
    n_tasks: int


def summarize_by_domain(results: list[TaskResult]) -> list[DomainSummary]:
    """Mean scores per (domain, tool), in first-appearance order."""
    grouped: dict[tuple[str, str], list[TaskResult]] = {}
    order: list[tuple[str, str]] = []
    for result in results:
        key = (result.domain, result.tool)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(result)
    return [
        DomainSummary(
            domain=domain,
            tool=tool,
            score=mean_score([r.score for r in grouped[(domain, tool)]]),
            n_tasks=len(grouped[(domain, tool)]),
        )
        for domain, tool in order
    ]


def overall_scores(results: list[TaskResult]) -> dict[str, Score]:
    """Mean score per tool across all tasks (the Figure 12 bars)."""
    by_tool: dict[str, list[Score]] = {}
    for result in results:
        by_tool.setdefault(result.tool, []).append(result.score)
    return {tool: mean_score(scores) for tool, scores in by_tool.items()}
