"""Ablated WebQA variants used across the paper's studies.

* Section 8.2 (Table 3): ``WebQA-NoPrune`` / ``WebQA-NoDecomp`` —
  synthesis-engine ablations; same programs, slower search.
* Section 8.3 (Table 4): random / shortest program selection.
* Appendix C.1 (Figure 13): ``WebQA-NL`` (question only) and
  ``WebQA-KW`` (keywords only) — input-modality ablations.
"""

from __future__ import annotations

from ..nlp.models import NlpModels
from ..synthesis.config import SynthesisConfig, no_decomp, no_prune
from ..synthesis.examples import LabeledExample
from ..webtree.node import WebPage
from .webqa import WebQA


class WebQANoPrune(WebQA):
    """WebQA without the F1 upper-bound pruning (Table 3)."""

    name = "WebQA-NoPrune"

    def __init__(self, config: SynthesisConfig | None = None, **kwargs: object) -> None:
        base = config or SynthesisConfig()
        super().__init__(config=no_prune(base), **kwargs)  # type: ignore[arg-type]


class WebQANoDecomp(WebQA):
    """WebQA with joint guard/extractor synthesis (Table 3)."""

    name = "WebQA-NoDecomp"

    def __init__(self, config: SynthesisConfig | None = None, **kwargs: object) -> None:
        base = config or SynthesisConfig()
        super().__init__(config=no_decomp(base), **kwargs)  # type: ignore[arg-type]


class WebQANlOnly(WebQA):
    """WebQA-NL: uses the question but drops the keywords (Figure 13)."""

    name = "WebQA-NL"

    def fit(
        self,
        question: str,
        keywords: tuple[str, ...],
        train: list[LabeledExample],
        unlabeled: list[WebPage],
        models: NlpModels,
    ) -> "WebQANlOnly":
        super().fit(question, (), train, unlabeled, models)
        return self


class WebQAKwOnly(WebQA):
    """WebQA-KW: uses the keywords but drops the question (Figure 13)."""

    name = "WebQA-KW"

    def fit(
        self,
        question: str,
        keywords: tuple[str, ...],
        train: list[LabeledExample],
        unlabeled: list[WebPage],
        models: NlpModels,
    ) -> "WebQAKwOnly":
        super().fit("", keywords, train, unlabeled, models)
        return self


def webqa_random_selection(seed: int = 0, **kwargs: object) -> WebQA:
    """The Random selection baseline of Table 4."""
    tool = WebQA(selection="random", seed=seed, **kwargs)  # type: ignore[arg-type]
    tool.name = "WebQA-Random"
    return tool


def webqa_shortest_selection(seed: int = 0, **kwargs: object) -> WebQA:
    """The Shortest selection baseline of Table 4."""
    tool = WebQA(selection="shortest", seed=seed, **kwargs)  # type: ignore[arg-type]
    tool.name = "WebQA-Shortest"
    return tool
