"""End-to-end WebQA system and its ablated variants."""

from .ablations import (
    WebQAKwOnly,
    WebQANlOnly,
    WebQANoDecomp,
    WebQANoPrune,
    webqa_random_selection,
    webqa_shortest_selection,
)
from .results import DomainSummary, TaskResult, overall_scores, summarize_by_domain
from .webqa import SELECTION_STRATEGIES, FitReport, WebQA

__all__ = [
    "WebQA",
    "FitReport",
    "SELECTION_STRATEGIES",
    "WebQAKwOnly",
    "WebQANlOnly",
    "WebQANoDecomp",
    "WebQANoPrune",
    "webqa_random_selection",
    "webqa_shortest_selection",
    "DomainSummary",
    "TaskResult",
    "overall_scores",
    "summarize_by_domain",
]
