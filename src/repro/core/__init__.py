"""End-to-end WebQA system, its ablated variants, and program artifacts."""

from .artifact import ARTIFACT_SCHEMA_VERSION, ProgramArtifact
from .errors import NotFittedError
from .ablations import (
    WebQAKwOnly,
    WebQANlOnly,
    WebQANoDecomp,
    WebQANoPrune,
    webqa_random_selection,
    webqa_shortest_selection,
)
from .results import DomainSummary, TaskResult, overall_scores, summarize_by_domain
from .webqa import SELECTION_STRATEGIES, FitReport, WebQA

__all__ = [
    "WebQA",
    "FitReport",
    "ProgramArtifact",
    "ARTIFACT_SCHEMA_VERSION",
    "NotFittedError",
    "SELECTION_STRATEGIES",
    "WebQAKwOnly",
    "WebQANlOnly",
    "WebQANoDecomp",
    "WebQANoPrune",
    "webqa_random_selection",
    "webqa_shortest_selection",
    "DomainSummary",
    "TaskResult",
    "overall_scores",
    "summarize_by_domain",
]
