"""Program artifacts: the versioned on-disk form of a fitted extractor.

Synthesis is expensive and interactive; serving is cheap and constant.
The paper's Figure 7 synthesizer *emits* a program — this module makes
that program a first-class asset: a :class:`ProgramArtifact` is a
self-contained JSON document holding everything a serving process needs
to answer the task, and nothing it does not:

* the selected :class:`~repro.dsl.ast.Program` (the learned artifact),
* the task inputs it closes over (question ``Q``, keywords ``K``),
* the **model bundle** (embedded state + content fingerprint, so a
  loaded artifact predicts bit-identically to the fitted tool and any
  cache keyed on the fingerprint invalidates exactly when the models
  change),
* compiled-plan metadata (engine, per-branch guard shapes) for
  inspection and capacity planning,
* fit-report statistics (training F1, optimal-set size, selection
  evidence, search counters) and optional task metadata.

What it deliberately does *not* hold: training pages, synthesis caches,
ensembles — the session (:mod:`repro.synthesis.session`) remains the
home of refittable state.  ``WebQA.from_artifact`` therefore never
synthesizes: loading is parse + compile, pinned by the zero-synthesis
counter assertions in ``tests/core/test_artifact.py``.

The format is versioned (:data:`ARTIFACT_SCHEMA_VERSION`); loaders
reject unknown versions loudly instead of misreading them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..dsl import ast
from ..dsl.depth import extractor_size, locator_size
from ..dsl.serialize import program_from_dict, program_to_dict
from ..nlp.models import NlpModels
from ..persist import read_artifact, tagged_payload, write_artifact

#: Version of the on-disk schema; bump on any incompatible change.
ARTIFACT_SCHEMA_VERSION = 1

#: Value of the ``kind`` header field identifying this artifact family.
ARTIFACT_KIND = "webqa-program-artifact"


def compiled_plan_meta(program: ast.Program, engine: str) -> dict[str, Any]:
    """Inspection metadata for the serving plan a program compiles to.

    Mirrors :class:`~repro.dsl.compile.CompiledProgram` step for step —
    guard discipline and term sizes per branch — without shipping the
    plan itself (plans hold interned live objects and are rebuilt in one
    pass at load).
    """
    steps = []
    for branch in program.branches:
        guard = branch.guard
        steps.append(
            {
                "guard": type(guard).__name__,
                "locator_size": locator_size(guard.locator),
                "extractor_size": extractor_size(branch.extractor),
            }
        )
    return {"engine": engine, "branches": len(steps), "steps": steps}


@dataclass(frozen=True)
class ProgramArtifact:
    """One exported extractor: program + models + provenance, versioned.

    Construct via :meth:`WebQA.export_artifact
    <repro.core.webqa.WebQA.export_artifact>`; consume via
    :meth:`WebQA.from_artifact <repro.core.webqa.WebQA.from_artifact>`
    or :class:`~repro.serving.service.QAService` routing keys.
    """

    question: str
    keywords: tuple[str, ...]
    program: ast.Program
    models: NlpModels
    model_fingerprint: str
    engine: str
    fit_stats: dict[str, Any] = field(default_factory=dict)
    task_meta: dict[str, Any] = field(default_factory=dict)
    schema_version: int = ARTIFACT_SCHEMA_VERSION

    def compiled_meta(self) -> dict[str, Any]:
        """Shape of the serving plan this artifact compiles to."""
        return compiled_plan_meta(self.program, self.engine)

    def fingerprint(self) -> str:
        """Sha256 version id over the artifact's *served* content.

        Covers exactly what determines answers — question, keywords,
        engine, program, and the embedded model state — and excludes
        provenance (fit stats, task metadata): two artifacts with equal
        fingerprints serve bit-identical answers.  This is the version
        key of :class:`~repro.serving.service.QAService` hot-swaps, so
        a no-change refit republishes under the same id.
        """
        canonical = json.dumps(
            {
                "question": self.question,
                "keywords": list(self.keywords),
                "engine": self.engine,
                "program": program_to_dict(self.program),
                "models": self.models.state_dict(),
            },
            sort_keys=True,
            ensure_ascii=False,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- encoding ---------------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The artifact as a JSON-compatible payload dictionary."""
        return tagged_payload(
            "kind",
            ARTIFACT_KIND,
            config={"engine": self.engine},
            timestamp=str(self.task_meta.get("timestamp", "")),
            schema_version=self.schema_version,
            task={
                "question": self.question,
                "keywords": list(self.keywords),
                **{
                    key: value
                    for key, value in self.task_meta.items()
                    if key != "timestamp"
                },
            },
            program=program_to_dict(self.program),
            compiled=self.compiled_meta(),
            models={
                "fingerprint": self.model_fingerprint,
                "state": self.models.state_dict(),
            },
            fit_report=dict(self.fit_stats),
        )

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ProgramArtifact":
        """Decode and validate a payload built by :meth:`to_payload`.

        Checks the artifact kind, the schema version, and that the
        recorded model fingerprint matches the embedded model state —
        a mismatch means the file was hand-edited or corrupted, and
        serving it would silently change predictions.
        """
        kind = payload.get("kind")
        if kind != ARTIFACT_KIND:
            raise ValueError(f"not a program artifact (kind={kind!r})")
        version = payload.get("schema_version")
        if version != ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported artifact schema version {version!r} "
                f"(this build reads version {ARTIFACT_SCHEMA_VERSION})"
            )
        task = payload["task"]
        models = NlpModels.from_state_dict(payload["models"]["state"])
        recorded = payload["models"]["fingerprint"]
        actual = models.fingerprint()
        if recorded != actual:
            raise ValueError(
                f"model-bundle fingerprint mismatch: artifact records "
                f"{recorded[:12]}…, embedded state hashes to {actual[:12]}… "
                f"— refusing to serve a tampered or corrupted artifact"
            )
        task_meta = {
            key: value
            for key, value in task.items()
            if key not in ("question", "keywords")
        }
        timestamp = payload.get("timestamp", "")
        if timestamp:
            task_meta["timestamp"] = timestamp
        return cls(
            question=task["question"],
            keywords=tuple(task["keywords"]),
            program=program_from_dict(payload["program"]),
            models=models,
            model_fingerprint=recorded,
            engine=payload["config"]["engine"],
            fit_stats=dict(payload.get("fit_report", {})),
            task_meta=task_meta,
            schema_version=version,
        )

    # -- file round-trip ---------------------------------------------------------

    def save(self, path: str) -> "ProgramArtifact":
        """Write the artifact to ``path`` as indented JSON; returns self."""
        write_artifact(path, self.to_payload())
        return self

    @classmethod
    def load(cls, path: str) -> "ProgramArtifact":
        """Read an artifact previously written by :meth:`save`."""
        return cls.from_payload(read_artifact(path))

    def describe(self) -> str:
        """Human-readable inspection summary (the ``inspect`` CLI body)."""
        compiled = self.compiled_meta()
        lines = [
            f"schema version: {self.schema_version}",
            f"question: {self.question}",
            f"keywords: {', '.join(self.keywords)}",
            f"engine: {self.engine} ({compiled['branches']} compiled branches)",
            f"model fingerprint: {self.model_fingerprint}",
        ]
        for key in ("task_id", "domain", "description", "timestamp"):
            if self.task_meta.get(key):
                lines.append(f"{key}: {self.task_meta[key]}")
        for key, value in sorted(self.fit_stats.items()):
            if isinstance(value, float):
                lines.append(f"{key}: {value:.3f}")
            elif not isinstance(value, (dict, list)):
                lines.append(f"{key}: {value}")
        return "\n".join(lines)
