"""The WebQA tool: synthesis + transductive selection, end to end.

This is the public entry point matching Figure 1 of the paper: given a
question, keywords, a few labeled webpages and the unlabeled target
pages, ``fit`` synthesizes all F1-optimal DSL programs and selects the
consensus program; ``predict`` runs it on any page.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.base import ExtractionTool
from ..dsl import ast
from ..dsl.compile import CompiledProgram, compile_program
from ..dsl.pretty import pretty_program
from ..nlp.models import NlpModels
from ..runtime.runner import TaskRunner
from ..selection.baselines import select_random, select_shortest
from ..selection.transductive import SelectionOutcome, select_program
from ..synthesis.config import SynthesisConfig, default_config
from ..synthesis.examples import LabeledExample, TaskContexts
from ..synthesis.session import SynthesisSession
from ..synthesis.top import SynthesisResult
from ..webtree.node import WebPage
from .artifact import ProgramArtifact
from .errors import NotFittedError

#: How the final program is chosen from the optimal set.
SELECTION_STRATEGIES = ("transductive", "random", "shortest")


@dataclass(frozen=True)
class FitReport:
    """Everything ``fit`` learned, for inspection and experiments."""

    synthesis: SynthesisResult
    program: ast.Program
    selection: SelectionOutcome | None

    @property
    def train_f1(self) -> float:
        return self.synthesis.f1

    @property
    def optimal_count(self) -> int:
        return self.synthesis.count()

    def program_text(self) -> str:
        return pretty_program(self.program)


class WebQA(ExtractionTool):
    """The full WebQA system (paper Figure 1).

    Parameters
    ----------
    config:
        Synthesis bounds; defaults to :func:`default_config`.
    ensemble_size:
        Transductive ensemble size N (paper default 1000).
    selection:
        One of :data:`SELECTION_STRATEGIES`; "transductive" is the paper's
        method, the others are the Table 4 baselines.
    seed:
        Seed for program sampling, making runs reproducible.
    """

    name = "WebQA"

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        ensemble_size: int = 1000,
        selection: str = "transductive",
        seed: int = 0,
    ) -> None:
        if selection not in SELECTION_STRATEGIES:
            raise ValueError(
                f"selection must be one of {SELECTION_STRATEGIES}, got {selection!r}"
            )
        self.config = config or default_config()
        self.ensemble_size = ensemble_size
        self.selection_strategy = selection
        self.seed = seed
        self.report: FitReport | None = None
        self._question = ""
        self._keywords: tuple[str, ...] = ()
        self._contexts: TaskContexts | None = None
        self._session: SynthesisSession | None = None
        self._unlabeled: list[WebPage] = []
        self._models: NlpModels | None = None
        self._compiled: CompiledProgram | None = None
        #: The learned program, set by fit() *or* from_artifact(); the
        #: serving predicate is "is there a program", not "was fit run".
        self._program: ast.Program | None = None
        #: Artifact this tool was loaded from, when it was (for stats
        #: and re-export without refitting).
        self.artifact: ProgramArtifact | None = None

    # -- ExtractionTool interface ------------------------------------------------

    def fit(
        self,
        question: str,
        keywords: tuple[str, ...],
        train: list[LabeledExample],
        unlabeled: list[WebPage],
        models: NlpModels,
    ) -> "WebQA":
        # The session is bound to (question, keywords, models), so a new
        # fit replaces it wholesale — but the instance *keeps* it, so
        # refit() can extend the labeled set without re-synthesizing
        # blocks whose content did not change.
        session = SynthesisSession(
            question, tuple(keywords), models,
            config=self.config, examples=list(train),
        )
        return self.fit_session(session, unlabeled)

    def fit_session(
        self, session: SynthesisSession, unlabeled: list[WebPage]
    ) -> "WebQA":
        """Fit from an existing session (e.g. one loaded from disk).

        The session's config/engine take precedence over this instance's
        ``config`` for evaluation, keeping cached branch spaces sound.
        """
        self._session = session
        self._question = session.question
        self._keywords = session.keywords
        self._contexts = session.contexts
        self._models = session.models
        self._unlabeled = list(unlabeled)
        return self._synthesize_and_select()

    def refit(
        self,
        new_examples: list[LabeledExample],
        unlabeled: list[WebPage] | None = None,
    ) -> "WebQA":
        """Extend the fitted session with more labels and re-select.

        The interactive loop of the paper: label one more page, press
        synthesize.  Only branch-synthesis blocks whose (block,
        negatives) content changed are re-solved; everything else comes
        from the session's fingerprint-keyed cache.
        """
        if self._session is None:
            raise NotFittedError("refit")
        self._session.add_examples(new_examples)
        if unlabeled is not None:
            self._unlabeled = list(unlabeled)
        return self._synthesize_and_select()

    def _synthesize_and_select(self) -> "WebQA":
        assert self._session is not None and self._models is not None
        synthesis = self._session.synthesize()
        if not synthesis.spaces:
            # No program scored above zero (possible under the modality
            # ablations): degrade to the empty program, which answers ∅.
            empty = ast.Program(())
            self.report = FitReport(synthesis=synthesis, program=empty, selection=None)
            self._program = empty
            self._compiled = compile_program(empty)
            return self
        selection: SelectionOutcome | None = None
        if self.selection_strategy == "transductive":
            selection = select_program(
                synthesis, list(self._unlabeled), self._models,
                ensemble_size=self.ensemble_size, seed=self.seed,
                engine=self._session.config.engine,
            )
            program = selection.program
        elif self.selection_strategy == "random":
            program = select_random(synthesis, seed=self.seed)
        else:
            program = select_shortest(synthesis, seed=self.seed)
        self.report = FitReport(synthesis=synthesis, program=program, selection=selection)
        self._program = program
        self._compiled = compile_program(program)
        return self

    def predict(self, page: WebPage) -> tuple[str, ...]:
        if self._contexts is None or self._compiled is None:
            raise NotFittedError("predict")
        # The compiled plan shares the task's per-page eval state (and
        # hence every memo table); its output is bit-identical to
        # interpreting ``self.report.program``.  ``serving_ctx`` keeps
        # the tool from retaining every page it ever answered.
        return self._compiled.run(self._contexts.serving_ctx(page))

    def predict_interpreted(self, page: WebPage) -> tuple[str, ...]:
        """:meth:`predict` via the AST interpreter, bypassing the compiled plan.

        The serving layer's degradation path: if a compiled plan ever
        misbehaves (or a chaos test injects a compiled-stage fault), the
        interpreter answers from the same program and eval state —
        bit-identical output, just without the compiled fast path.
        """
        if self._contexts is None or self._program is None:
            raise NotFittedError("predict_interpreted")
        return self._contexts.serving_ctx(page).eval_program(self._program)

    def predict_batch(
        self,
        pages: list[WebPage],
        jobs: int = 1,
        backend: str = "thread",
        runner: TaskRunner | None = None,
    ) -> list[tuple[str, ...]]:
        """``predict`` over many pages, optionally fanned across a pool.

        Results come back in page order for any ``jobs`` count (the
        :class:`~repro.runtime.runner.TaskRunner` determinism guarantee),
        and each entry is bit-identical to a sequential ``predict`` call
        — pinned by ``tests/core/test_predict_batch.py``.  The default
        ``"thread"`` backend shares this instance's compiled plan and
        page caches; ``"process"`` requires the tool to be picklable and
        re-derives caches worker-side.  Callers dispatching many small
        batches (the serving service) pass a persistent ``runner`` so
        pool construction is not paid per batch; ``jobs``/``backend``
        are ignored when one is given.
        """
        if self._contexts is None or self._compiled is None:
            raise NotFittedError("predict_batch")
        if runner is None:
            runner = TaskRunner(jobs=jobs, backend=backend)
        return runner.map(self.predict, list(pages))

    # -- artifact round-trip -----------------------------------------------------

    def export_artifact(
        self, path: str | None = None, task_meta: dict | None = None
    ) -> ProgramArtifact:
        """Package the learned program as a :class:`ProgramArtifact`.

        The artifact is self-contained (program + embedded model state +
        fingerprint + fit statistics); ``path`` additionally writes it to
        disk.  :meth:`from_artifact` round-trips it into a serving-only
        tool whose predictions are bit-identical to this one's.
        """
        if self._program is None or self._contexts is None or self._models is None:
            raise NotFittedError("export_artifact")
        fit_stats: dict = {"selection_strategy": self.selection_strategy}
        if self.report is not None:
            stats = self.report.synthesis.stats
            fit_stats.update(
                train_f1=self.report.train_f1,
                optimal_programs=self.report.optimal_count,
                partitions_explored=stats.partitions_explored,
                guards_tried=stats.guards_tried,
                extractors_evaluated=stats.extractors_evaluated,
                extractor_dedup_hits=stats.extractor_dedup_hits,
                blocks_synthesized=stats.blocks_synthesized,
                blocks_reused=stats.blocks_reused,
            )
            if self.report.selection is not None:
                fit_stats["selection"] = {
                    "loss": self.report.selection.loss,
                    "ensemble_size": self.report.selection.ensemble_size,
                    "distinct_outputs": self.report.selection.distinct_outputs,
                }
        elif self.artifact is not None:
            # Re-export of a loaded artifact: carry the original stats.
            fit_stats = dict(self.artifact.fit_stats)
        if task_meta is None and self.artifact is not None:
            # Provenance survives re-export: a loaded tool keeps its
            # original task metadata unless the caller replaces it.
            task_meta = self.artifact.task_meta
        artifact = ProgramArtifact(
            question=self._question,
            keywords=self._keywords,
            program=self._program,
            models=self._models,
            model_fingerprint=self._models.fingerprint(),
            engine=self._contexts.engine,
            fit_stats=fit_stats,
            task_meta=dict(task_meta or {}),
        )
        if path is not None:
            artifact.save(path)
        return artifact

    @classmethod
    def from_artifact(cls, source: "str | ProgramArtifact") -> "WebQA":
        """A serving-only tool rebuilt from an artifact (path or object).

        Loading performs **no synthesis** — only JSON decode, model-state
        reconstruction and plan compilation (guarded by the
        :func:`~repro.synthesis.session.synthesis_call_count` counter in
        the tests).  The tool predicts bit-identically to the one that
        exported the artifact; ``fit``-family operations (``refit``,
        ``session``) raise because no synthesis session travels with it.
        """
        artifact = (
            ProgramArtifact.load(source) if isinstance(source, str) else source
        )
        tool = cls()
        tool._question = artifact.question
        tool._keywords = artifact.keywords
        tool._models = artifact.models
        tool._contexts = TaskContexts(
            artifact.question,
            artifact.keywords,
            artifact.models,
            engine=artifact.engine,
        )
        tool._program = artifact.program
        tool._compiled = compile_program(artifact.program)
        tool.artifact = artifact
        return tool

    # -- conveniences ----------------------------------------------------------------

    @property
    def session(self) -> SynthesisSession:
        """The live synthesis session (for inspection, refits, saving)."""
        if self._session is None:
            raise NotFittedError("session")
        return self._session

    @property
    def program(self) -> ast.Program:
        if self._program is None:
            raise NotFittedError("program")
        return self._program

    def explain(self) -> str:
        """Human-readable description of the learned program."""
        if self._program is not None and self.report is None:
            lines = [
                f"question: {self._question}",
                f"keywords: {', '.join(self._keywords)}",
                "loaded from artifact (no synthesis session)",
                f"selected: {pretty_program(self._program)}",
            ]
            return "\n".join(lines)
        if self.report is None:
            return "<unfitted WebQA>"
        lines = [
            f"question: {self._question}",
            f"keywords: {', '.join(self._keywords)}",
            f"training F1: {self.report.train_f1:.3f}",
            f"optimal programs: {self.report.optimal_count}",
            f"selected: {self.report.program_text()}",
        ]
        if self.report.selection is not None:
            lines.append(
                f"consensus loss: {self.report.selection.loss:.2f} over "
                f"{self.report.selection.distinct_outputs} distinct behaviours"
            )
        return "\n".join(lines)
