"""Exception types of the core WebQA API.

Kept in their own module so the serving layer (``repro.serving``) and
the tool (``repro.core.webqa``) can share them without an import cycle.
"""

from __future__ import annotations


class NotFittedError(RuntimeError):
    """An operation needing a learned program was called on an unfitted tool.

    Subclasses :class:`RuntimeError` so callers that guarded the old
    behaviour (``raise RuntimeError("fit must be called ...")``) keep
    working unchanged.
    """

    def __init__(self, operation: str = "this operation") -> None:
        super().__init__(
            f"{operation} requires a learned program: call fit() (or "
            f"refit()/fit_session()) to synthesize one, or load a saved "
            f"artifact with WebQA.from_artifact()"
        )
        self.operation = operation
