"""Exception types of the core WebQA API and the serving error taxonomy.

Kept in their own module so the serving layer (``repro.serving``) and
the tool (``repro.core.webqa``) can share them without an import cycle.

The serving taxonomy (:class:`ServingError` and its subclasses) gives a
long-lived service one structured vocabulary for *everything* that can
go wrong on the request path: which **stage** failed (ingest, route,
predict, admission, deadline), which **route** and page **fingerprint**
were involved, how many **retries** were spent, and whether the failure
is **transient** (worth retrying: a crashed worker, an injected
recoverable fault) or terminal.  ``QAService.ask_many(strict=False)``
returns these inside per-request ``ServingResult`` values instead of
letting one poisoned request fail its whole micro-batch; ``strict=True``
raises them through, preserving the original fail-fast semantics.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor


class NotFittedError(RuntimeError):
    """An operation needing a learned program was called on an unfitted tool.

    Subclasses :class:`RuntimeError` so callers that guarded the old
    behaviour (``raise RuntimeError("fit must be called ...")``) keep
    working unchanged.
    """

    def __init__(self, operation: str = "this operation") -> None:
        super().__init__(
            f"{operation} requires a learned program: call fit() (or "
            f"refit()/fit_session()) to synthesize one, or load a saved "
            f"artifact with WebQA.from_artifact()"
        )
        self.operation = operation


class ServingError(RuntimeError):
    """Base of the serving failure taxonomy.

    Parameters
    ----------
    route / fingerprint:
        Request context: the routing key and the ingest fingerprint of
        the page involved (empty when unknown at raise time).
    retries:
        Retry attempts spent before this error became final.  Mutable on
        purpose — the retry loop stamps the final count onto the error
        it ultimately reports.
    transient:
        ``True`` for failures a bounded retry may cure (worker crash,
        injected recoverable fault); the service's retry policy only
        ever retries transient errors.
    injected:
        ``True`` when the error came from the deterministic
        fault-injection harness (:mod:`repro.serving.faults`), so chaos
        tests can tell injected failures from organic ones.
    """

    #: Pipeline stage this error class belongs to (overridden per subclass).
    stage = "serving"

    def __init__(
        self,
        message: str,
        *,
        route: str = "",
        fingerprint: str = "",
        retries: int = 0,
        transient: bool = False,
        injected: bool = False,
    ) -> None:
        super().__init__(message)
        self.route = route
        self.fingerprint = fingerprint
        self.retries = retries
        self.transient = transient
        self.injected = injected

    def as_dict(self) -> dict:
        """Structured form for logs, stats and chaos-bench tables."""
        return {
            "type": type(self).__name__,
            "stage": self.stage,
            "message": str(self),
            "route": self.route,
            "fingerprint": self.fingerprint,
            "retries": self.retries,
            "transient": self.transient,
            "injected": self.injected,
        }


class IngestError(ServingError):
    """Raw HTML could not be turned into a servable page."""

    stage = "ingest"


class RouteError(ServingError, KeyError):
    """The request named a routing key with no registered artifact.

    Also a :class:`KeyError` so pre-taxonomy callers catching the old
    ``KeyError("unknown route ...")`` keep working unchanged.
    """

    stage = "route"

    # KeyError.__str__ repr-quotes its argument; keep the plain message.
    __str__ = RuntimeError.__str__


class PredictError(ServingError):
    """The predict stage failed for one request (after any fallback)."""

    stage = "predict"


class DeadlineExceeded(ServingError):
    """The request's deadline elapsed before an answer was produced.

    Never transient: by definition there is no time left to retry.
    """

    stage = "deadline"

    def __init__(
        self,
        message: str,
        *,
        deadline_seconds: float = 0.0,
        elapsed_seconds: float = 0.0,
        **context,
    ) -> None:
        context.pop("transient", None)
        super().__init__(message, transient=False, **context)
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds

    def as_dict(self) -> dict:
        payload = super().as_dict()
        payload["deadline_seconds"] = self.deadline_seconds
        payload["elapsed_seconds"] = self.elapsed_seconds
        return payload


class RejectedError(ServingError):
    """The request was shed before any work was done on it.

    Raised by admission control (the in-flight bound) and by an open
    per-route circuit breaker.  Transient by nature — the caller may
    retry later — but never retried *inside* the service: shedding
    exists to reduce load, and an internal retry would re-add it.
    """

    stage = "admission"

    def __init__(self, message: str, *, reason: str = "overload", **context) -> None:
        context.pop("transient", None)
        super().__init__(message, transient=True, **context)
        self.reason = reason

    def as_dict(self) -> dict:
        payload = super().as_dict()
        payload["reason"] = self.reason
        return payload


def is_transient(error: BaseException) -> bool:
    """Is ``error`` worth a bounded retry?

    :class:`ServingError` carries its own flag; a
    :class:`concurrent.futures.BrokenExecutor` (a crashed worker pool —
    the :class:`~repro.runtime.TaskRunner` rebuilds it on the next map)
    is always transient.  Everything else is terminal: an organic
    predict exception is deterministic, so re-running it buys nothing.
    """
    if isinstance(error, ServingError):
        return error.transient
    return isinstance(error, BrokenExecutor)
