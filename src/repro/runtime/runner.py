"""Parallel task execution over ``concurrent.futures`` pools.

The experiment sweeps (and the production serving layer built on this
reproduction) run *many independent extraction tasks*: each task fits a
tool on its own dataset and scores it.  :class:`TaskRunner` fans such
work across a thread or process pool with three guarantees the sweeps
rely on:

* **Deterministic ordering** — results come back in submission order,
  regardless of which worker finished first, so a ``jobs=4`` run is
  byte-identical to ``jobs=1`` (pinned by
  ``tests/runtime/test_task_runner.py``).
* **Selectable backend** — ``"thread"`` shares the in-process page/model
  caches (cheap, the default); ``"process"`` sidesteps the GIL for
  CPU-bound sweeps at the cost of pickling work items, so process jobs
  should carry small *descriptions* (task ids, configs) and rebuild
  heavy state worker-side — the seeded corpus generators make that
  exact.
* **Warmup hooks** — :func:`warm_pages` pre-builds every page's
  evaluation index before the timed fit, so parallel workers measure
  synthesis, not index construction, and thread workers do not race on
  first-touch index builds.

``jobs=1`` bypasses the pool entirely and runs inline — the exact serial
semantics, used as the determinism baseline.

Fault tolerance (PR 6): a *persistent* runner survives a crashed pool.
When a map observes :class:`concurrent.futures.BrokenExecutor` (a
process worker died mid-item, a thread initializer raised), the broken
executor is discarded under the pool lock so the **next** map builds a
fresh pool instead of failing forever — previously one
``BrokenProcessPool`` left the runner permanently dead.  ``map`` also
grows two serving-grade knobs: ``return_exceptions`` isolates work items
(a failed item yields its exception *in place* instead of poisoning the
whole map), and ``deadline`` bounds the total wait.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Iterable, Sequence, TypeVar

from ..webtree.node import WebPage

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Supported pool backends.
BACKENDS = ("thread", "process")


def warm_pages(pages: Iterable[WebPage]) -> int:
    """Build every page's evaluation index; returns the number warmed.

    Call this once per worker on the pages a task will evaluate: the
    Euler-tour index (and the shared eval caches hanging off it) are
    built eagerly instead of on first locator evaluation inside the
    timed synthesis loop.
    """
    count = 0
    for page in pages:
        page.index()
        count += 1
    return count


def _prewarm_noop() -> None:
    """Picklable no-op: :meth:`TaskRunner.prewarm` on the process backend."""


#: Per-worker corpus store handle, set by :func:`corpus_store_initializer`.
_worker_store = None


def corpus_store_initializer(path: str, fingerprints: Sequence[str] = ()) -> None:
    """Worker warm-start from a corpus store path.

    Pass as ``TaskRunner(initializer=corpus_store_initializer,
    initargs=(path, fingerprints))``: each worker opens the store once
    (an ``np.memmap`` — N workers share the read-only file through the
    OS page cache instead of each parsing private copies) and optionally
    pre-loads the named pages so their indexes exist before the first
    mapped item.  The handle is available to mapped functions via
    :func:`worker_store`.  Works on both backends: in a process worker
    the global is per-process; with threads (or ``jobs=1`` inline) it is
    simply module state.
    """
    global _worker_store
    from ..webtree.store import CorpusStoreReader

    _worker_store = CorpusStoreReader(path)
    for fingerprint in fingerprints:
        _worker_store.load(fingerprint)


def worker_store():
    """The store opened by :func:`corpus_store_initializer` here.

    Raises ``RuntimeError`` when no store initializer ran in this
    worker — a mapped function asking for pages that were never warmed
    is a wiring bug, not a case to silently re-parse around.
    """
    if _worker_store is None:
        raise RuntimeError(
            "no corpus store in this worker: construct the TaskRunner with "
            "initializer=corpus_store_initializer, initargs=(path, ...)"
        )
    return _worker_store


class TaskRunner:
    """Map a function over work items with a configurable worker pool.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` (the default) runs inline with no pool.
    backend:
        ``"thread"`` or ``"process"``.  Process pools require the mapped
        function to be a module-level callable and items/results to be
        picklable.
    initializer / initargs:
        Forwarded to the executor: runs once per worker before any item,
        for per-worker warmup (e.g. priming model caches).
    persistent:
        With the default ``False``, every :meth:`map` call builds and
        tears down its own pool — fine for the sweeps, where one map
        call covers the whole workload.  With ``True`` the runner keeps
        one long-lived pool across calls (built lazily, shut down by
        :meth:`close` or the context-manager exit) — what a serving
        process dispatching many small micro-batches needs, since pool
        construction would otherwise dominate per-batch cost (process
        pools re-spawn workers; thread pools re-spawn threads).  A
        persistent pool that breaks (worker crash) is discarded and
        rebuilt lazily on the next :meth:`map`; :attr:`pools_broken`
        counts such discards.
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: str = "thread",
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        persistent: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.jobs = jobs
        self.backend = backend
        self.initializer = initializer
        self.initargs = initargs
        self.persistent = persistent
        #: Broken executors discarded so far (each is lazily replaced by
        #: a fresh pool on the next map); a service surfaces this in its
        #: stats as the pool-crash count.
        self.pools_broken = 0
        self._pool: Executor | None = None
        # Guards lazy pool creation: a persistent runner is shared by
        # concurrent callers (the serving service), and an unsynchronized
        # double-build would leak the losing executor's live workers.
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Shut down the persistent pool, if one was ever built."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "TaskRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _executor(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        return ThreadPoolExecutor(
            max_workers=self.jobs,
            thread_name_prefix="repro-task",
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _acquire_pool(self) -> Executor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._executor()
            return self._pool

    def prewarm(self) -> None:
        """Start the persistent pool's workers before the first batch.

        Executors spawn workers lazily, one per submit, so a fresh
        serving process otherwise bills pool construction (OS thread or
        process startup, per-worker initializers) to its first batch's
        latency.  Calling this at service startup moves that cost out of
        the request path.  No-op for non-persistent runners and for
        ``jobs=1`` (which maps inline, no pool at all).
        """
        if not self.persistent or self.jobs == 1:
            return
        pool = self._acquire_pool()
        if self.backend == "thread":
            # One submit per worker, held at a barrier so no thread can
            # drain two of them: all `jobs` threads must exist before
            # any future resolves.  The timeout is a safety valve — a
            # broken barrier just means a partial prewarm.
            barrier = threading.Barrier(self.jobs)

            def hold() -> None:
                try:
                    barrier.wait(timeout=5.0)
                except threading.BrokenBarrierError:
                    pass

            futures = [pool.submit(hold) for _ in range(self.jobs)]
        else:
            # Process workers can't share a barrier; best-effort no-ops
            # still trigger worker spawn + per-worker initializers.
            futures = [pool.submit(_prewarm_noop) for _ in range(self.jobs)]
        for future in futures:
            future.result()

    def _discard_pool(self, pool: Executor) -> None:
        """Drop a broken persistent executor so the next map rebuilds.

        Safe against races: only the runner's *current* pool is
        discarded (a concurrent map may already have replaced it), and
        the broken executor is shut down without waiting — its workers
        are dead or dying.
        """
        discarded = False
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
                self.pools_broken += 1
                discarded = True
        if discarded:
            pool.shutdown(wait=False)

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        *,
        return_exceptions: bool = False,
        deadline: float | None = None,
    ) -> list:
        """``[fn(item) for item in items]``, possibly in parallel.

        Results are returned in item order.  With the default
        ``return_exceptions=False`` the first worker exception propagates
        to the caller (remaining futures are cancelled where possible).
        With ``return_exceptions=True`` each failed item's exception is
        returned *in its slot* instead — per-item isolation for callers
        (the serving service) that must not let one bad request poison a
        batch; only ``Exception`` subclasses are captured, so
        ``KeyboardInterrupt``/``SystemExit`` always propagate.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp:
        once it passes, items whose results are not yet available fail
        with :class:`concurrent.futures.TimeoutError` (raised, or
        returned in-slot under ``return_exceptions``).  Already-finished
        results are still collected — a deadline bounds *waiting*, never
        discards completed work.  Running work is not interrupted (thread
        pools cannot cancel mid-flight); pending futures are cancelled.

        A :class:`BrokenExecutor` observed on a persistent pool marks the
        pool broken: the executor is discarded and the next map builds a
        fresh one (see :attr:`pools_broken`).
        """
        items = list(items)
        if self.jobs == 1:
            return self._map_inline(fn, items, return_exceptions, deadline)
        if not self.persistent:
            with self._executor() as pool:
                return self._map_on(pool, fn, items, return_exceptions, deadline)
        # Persistent: tolerate a pool that broke since the last call —
        # submission to a dead executor raises BrokenExecutor; discard
        # and rebuild once before giving up.
        for attempt in (0, 1):
            pool = self._acquire_pool()
            try:
                return self._map_on(pool, fn, items, return_exceptions, deadline)
            except BrokenExecutor:
                self._discard_pool(pool)
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _map_inline(
        self,
        fn: Callable[[ItemT], ResultT],
        items: list,
        return_exceptions: bool,
        deadline: float | None,
    ) -> list:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        results: list = []
        for item in items:
            if deadline is not None and time.monotonic() > deadline:
                timeout = FuturesTimeout(
                    f"deadline passed with {len(items) - len(results)} items pending"
                )
                if not return_exceptions:
                    raise timeout
                results.append(timeout)
                continue
            try:
                results.append(fn(item))
            except Exception as error:
                if not return_exceptions:
                    raise
                results.append(error)
        return results

    def _map_on(
        self,
        pool: Executor,
        fn: Callable[[ItemT], ResultT],
        items: list,
        return_exceptions: bool,
        deadline: float | None,
    ) -> list:
        # Submission itself can observe a dead executor; the caller
        # (map) handles BrokenExecutor raised from here.
        futures = [pool.submit(fn, item) for item in items]
        results: list = []
        broken = False
        try:
            for future in futures:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                try:
                    results.append(future.result(timeout=timeout))
                except FuturesTimeout as error:
                    if not return_exceptions:
                        raise
                    future.cancel()
                    results.append(error)
                except Exception as error:
                    if isinstance(error, BrokenExecutor):
                        broken = True
                    if not return_exceptions:
                        raise
                    results.append(error)
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        finally:
            if broken and self.persistent:
                self._discard_pool(pool)
        return results
