"""Parallel task execution over ``concurrent.futures`` pools.

The experiment sweeps (and any production serving layer built on this
reproduction) run *many independent extraction tasks*: each task fits a
tool on its own dataset and scores it.  :class:`TaskRunner` fans such
work across a thread or process pool with three guarantees the sweeps
rely on:

* **Deterministic ordering** — results come back in submission order,
  regardless of which worker finished first, so a ``jobs=4`` run is
  byte-identical to ``jobs=1`` (pinned by
  ``tests/runtime/test_task_runner.py``).
* **Selectable backend** — ``"thread"`` shares the in-process page/model
  caches (cheap, the default); ``"process"`` sidesteps the GIL for
  CPU-bound sweeps at the cost of pickling work items, so process jobs
  should carry small *descriptions* (task ids, configs) and rebuild
  heavy state worker-side — the seeded corpus generators make that
  exact.
* **Warmup hooks** — :func:`warm_pages` pre-builds every page's
  evaluation index before the timed fit, so parallel workers measure
  synthesis, not index construction, and thread workers do not race on
  first-touch index builds.

``jobs=1`` bypasses the pool entirely and runs inline — the exact serial
semantics, used as the determinism baseline.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..webtree.node import WebPage

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Supported pool backends.
BACKENDS = ("thread", "process")


def warm_pages(pages: Iterable[WebPage]) -> int:
    """Build every page's evaluation index; returns the number warmed.

    Call this once per worker on the pages a task will evaluate: the
    Euler-tour index (and the shared eval caches hanging off it) are
    built eagerly instead of on first locator evaluation inside the
    timed synthesis loop.
    """
    count = 0
    for page in pages:
        page.index()
        count += 1
    return count


class TaskRunner:
    """Map a function over work items with a configurable worker pool.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` (the default) runs inline with no pool.
    backend:
        ``"thread"`` or ``"process"``.  Process pools require the mapped
        function to be a module-level callable and items/results to be
        picklable.
    initializer / initargs:
        Forwarded to the executor: runs once per worker before any item,
        for per-worker warmup (e.g. priming model caches).
    persistent:
        With the default ``False``, every :meth:`map` call builds and
        tears down its own pool — fine for the sweeps, where one map
        call covers the whole workload.  With ``True`` the runner keeps
        one long-lived pool across calls (built lazily, shut down by
        :meth:`close` or the context-manager exit) — what a serving
        process dispatching many small micro-batches needs, since pool
        construction would otherwise dominate per-batch cost (process
        pools re-spawn workers; thread pools re-spawn threads).
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: str = "thread",
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        persistent: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.jobs = jobs
        self.backend = backend
        self.initializer = initializer
        self.initargs = initargs
        self.persistent = persistent
        self._pool: Executor | None = None
        # Guards lazy pool creation: a persistent runner is shared by
        # concurrent callers (the serving service), and an unsynchronized
        # double-build would leak the losing executor's live workers.
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Shut down the persistent pool, if one was ever built."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "TaskRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _executor(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        return ThreadPoolExecutor(
            max_workers=self.jobs,
            thread_name_prefix="repro-task",
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
    ) -> list[ResultT]:
        """``[fn(item) for item in items]``, possibly in parallel.

        Results are returned in item order; the first worker exception
        propagates to the caller (remaining futures are cancelled where
        possible).
        """
        items = list(items)
        if self.jobs == 1:
            if self.initializer is not None:
                self.initializer(*self.initargs)
            return [fn(item) for item in items]
        if self.persistent:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = self._executor()
                pool = self._pool
            return self._map_on(pool, fn, items)
        with self._executor() as pool:
            return self._map_on(pool, fn, items)

    @staticmethod
    def _map_on(
        pool: Executor, fn: Callable[[ItemT], ResultT], items: list[ItemT]
    ) -> list[ResultT]:
        futures = [pool.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise
