"""Coalescing work queue: the micro-batching seam of the serving gateway.

A :class:`CoalescingQueue` sits between many producers (front-end
threads accepting requests) and one consumer (a shard dispatcher).  It
buys the two properties a sharded serving path needs from its queue:

* **Micro-batch coalescing.**  :meth:`take` returns a *batch*, not an
  item: it flushes as soon as ``max_batch`` items are waiting (size
  trigger) or the oldest waiting item has aged past
  ``max_delay_seconds`` (age trigger), whichever comes first.  Under
  burst load batches fill instantly and amortize per-dispatch overhead;
  under trickle load the age bound caps the latency a lone request pays
  for batching.
* **Deterministic backpressure.**  ``max_depth`` bounds the number of
  waiting items.  :meth:`put` on a full queue *returns False* instead
  of blocking or raising — shedding is an explicit, instant outcome the
  caller turns into a structured rejection, never an implicit stall.
  Which requests are shed is therefore a pure function of arrival
  order, which is what makes overload testable.

``pause`` / ``resume`` freeze the consumer side (``take`` blocks while
paused) without touching the producer side — the lever tests use to
drive the queue to its bound deterministically, and operators could use
to quiesce one shard.  :meth:`close` stops producers immediately
(:class:`QueueClosed`) while the consumer drains what remains; a
``take`` on a closed, empty queue returns ``[]``, the consumer's
shutdown signal.  Close overrides pause: a paused, closed queue still
drains, so shutdown can never deadlock behind a forgotten pause.

Everything is one lock and one condition variable; the critical
sections are deque operations only.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class QueueClosed(Exception):
    """Raised by :meth:`CoalescingQueue.put` after :meth:`close`."""


class CoalescingQueue:
    """Bounded multi-producer queue whose consumer takes micro-batches.

    Parameters
    ----------
    max_batch:
        Flush size: :meth:`take` never returns more items than this,
        and returns immediately once this many are waiting.
    max_delay_seconds:
        Flush age: the longest a waiting item may age before the batch
        it leads is released, even if under-full.  ``0`` flushes
        whatever is present without waiting to fill.
    max_depth:
        Bound on waiting items (``None`` = unbounded).  A ``put``
        beyond it is refused with ``False``.
    clock:
        Injectable monotonic clock (tests drive age triggers without
        sleeping).
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_delay_seconds: float = 0.002,
        max_depth: "int | None" = None,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_seconds < 0:
            raise ValueError(
                f"max_delay_seconds must be >= 0, got {max_delay_seconds}"
            )
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_batch = max_batch
        self.max_delay_seconds = max_delay_seconds
        self.max_depth = max_depth
        self._clock = clock
        self._items: "deque[tuple[float, object]]" = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._paused = False
        #: Producers refused because the queue stood at ``max_depth``.
        self.shed = 0

    # -- producer side -------------------------------------------------------

    def put(self, item: object) -> bool:
        """Enqueue one item; ``False`` means *shed* (queue at its bound)."""
        with self._wake:
            if self._closed:
                raise QueueClosed("put on a closed queue")
            if (
                self.max_depth is not None
                and len(self._items) >= self.max_depth
            ):
                self.shed += 1
                return False
            self._items.append((self._clock(), item))
            self._wake.notify_all()
            return True

    # -- consumer side -------------------------------------------------------

    def take(self) -> "list[object]":
        """Block until a batch is due; ``[]`` only when closed and empty.

        A batch is due when ``max_batch`` items wait, when the oldest
        waiting item has aged ``max_delay_seconds``, or when the queue
        is closed (drain immediately, no point aging a dead queue).
        """
        with self._wake:
            while True:
                if self._closed:
                    return self._drain()
                if self._paused or not self._items:
                    self._wake.wait()
                    continue
                if len(self._items) >= self.max_batch:
                    return self._drain()
                age = self._clock() - self._items[0][0]
                remaining = self.max_delay_seconds - age
                if remaining <= 0:
                    return self._drain()
                self._wake.wait(remaining)

    def _drain(self) -> "list[object]":
        batch = []
        while self._items and len(batch) < self.max_batch:
            batch.append(self._items.popleft()[1])
        return batch

    # -- control -------------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def pause(self) -> None:
        """Freeze the consumer: ``take`` blocks until :meth:`resume`."""
        with self._wake:
            self._paused = True

    def resume(self) -> None:
        with self._wake:
            self._paused = False
            self._wake.notify_all()

    @property
    def paused(self) -> bool:
        with self._lock:
            return self._paused

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Refuse new work; wake consumers to drain the remainder."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
