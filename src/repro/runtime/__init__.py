"""Parallel task runtime: fan extraction tasks across worker pools.

- :class:`TaskRunner` — deterministic-ordering map over a thread or
  process pool (``jobs`` selectable, ``jobs=1`` runs inline).
- :class:`CoalescingQueue` — bounded multi-producer queue whose
  consumer takes size- or age-triggered micro-batches; the batching
  and backpressure seam of the serving gateway.
- :func:`warm_pages` — per-worker page-index warmup.
- :func:`corpus_store_initializer` / :func:`worker_store` — per-worker
  warm-start from a disk-backed corpus store: N workers share one
  memmapped page file through the OS page cache instead of parsing
  private copies.

This package is the orchestration seam above single-task synthesis: the
experiment sweeps (``repro.experiments.common.run_comparison``), the CLI
(``--jobs``) and any future serving layer all schedule work through it.
"""

from .batchq import CoalescingQueue, QueueClosed
from .runner import (
    BACKENDS,
    TaskRunner,
    corpus_store_initializer,
    warm_pages,
    worker_store,
)

__all__ = [
    "CoalescingQueue",
    "QueueClosed",
    "TaskRunner",
    "warm_pages",
    "BACKENDS",
    "corpus_store_initializer",
    "worker_store",
]
