"""Parallel task runtime: fan extraction tasks across worker pools.

- :class:`TaskRunner` — deterministic-ordering map over a thread or
  process pool (``jobs`` selectable, ``jobs=1`` runs inline).
- :func:`warm_pages` — per-worker page-index warmup.

This package is the orchestration seam above single-task synthesis: the
experiment sweeps (``repro.experiments.common.run_comparison``), the CLI
(``--jobs``) and any future serving layer all schedule work through it.
"""

from .runner import BACKENDS, TaskRunner, warm_pages

__all__ = ["TaskRunner", "warm_pages", "BACKENDS"]
