"""Shared JSON-artifact persistence helpers.

Three subsystems persist JSON artifacts with the same conventions —
experiment results (:mod:`repro.experiments.persist`), micro-benchmark
medians (``benchmarks/persist.py``) and program artifacts
(:mod:`repro.core.artifact`).  Each used to hand-roll the identical
``json.dumps``/file plumbing; this module is the single home for it.

Conventions: UTF-8, two-space indentation, a metadata header first
(artifact kind, config, timestamp), and a trailing newline on files so
committed artifacts diff cleanly.
"""

from __future__ import annotations

import json
from typing import Any


def artifact_text(payload: dict[str, Any], sort_keys: bool = False) -> str:
    """The canonical serialized form of one JSON artifact."""
    return json.dumps(payload, indent=2, sort_keys=sort_keys, ensure_ascii=False)


def write_artifact(
    path: str, payload: dict[str, Any], sort_keys: bool = False
) -> None:
    """Write ``payload`` to ``path`` in the canonical artifact form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(artifact_text(payload, sort_keys=sort_keys) + "\n")


def read_artifact(path: str) -> dict[str, Any]:
    """Read a JSON artifact written by :func:`write_artifact`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"artifact {path!r} is not a JSON object")
    return payload


def tagged_payload(
    tag_key: str,
    tag_value: str,
    config: dict[str, Any],
    timestamp: str = "",
    **body: Any,
) -> dict[str, Any]:
    """Assemble the standard artifact shape: header first, body after.

    ``tag_key`` names the artifact family (``"experiment"``, ``"suite"``,
    …) so readers can dispatch without guessing from the body.
    """
    return {tag_key: tag_value, "config": config, "timestamp": timestamp, **body}
