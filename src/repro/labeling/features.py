"""Page featurization for interactive labeling (paper Section 7).

WebQA suggests which pages the user should label by clustering the test
set "based on various features, including which section locator
constructs yield non-empty answers, the type of entities contained in the
extracted sections, the layout of extracted sections etc.".  This module
computes exactly that feature vector:

* layout statistics (node/leaf/list/table counts, depth profile);
* which shallow locator templates locate anything;
* entity-type histogram over list/table sections;
* best keyword similarity among section headers.
"""

from __future__ import annotations

import numpy as np

from ..nlp.models import NlpModels
from ..nlp.ner import ENTITY_LABELS
from ..webtree.node import NodeType, WebPage
from ..webtree.paths import list_sections

#: Shallow locator templates probed by the featurizer, named for clarity.
LOCATOR_TEMPLATES = (
    "children",  # GetChildren(root, ⊤)
    "grandchildren",  # GetChildren(GetChildren(root, ⊤), ⊤)
    "leaves",  # GetDescendants(root, isLeaf)
    "elements",  # GetDescendants(root, isElem)
)


def page_features(
    page: WebPage, models: NlpModels, keywords: tuple[str, ...]
) -> np.ndarray:
    """Numeric feature vector describing a page's schema.

    The vector layout is: 5 layout stats, 4 locator-template indicators,
    ``len(ENTITY_LABELS)`` entity fractions, 1 keyword-affinity score.
    """
    nodes = page.nodes()
    leaves = [n for n in nodes if n.is_leaf()]
    lists = [n for n in nodes if n.node_type is NodeType.LIST]
    tables = [n for n in nodes if n.node_type is NodeType.TABLE]
    max_depth = max((n.depth() for n in nodes), default=0)

    layout = [
        min(len(nodes) / 50.0, 2.0),
        min(len(leaves) / 30.0, 2.0),
        min(len(lists) / 5.0, 2.0),
        min(len(tables) / 3.0, 2.0),
        min(max_depth / 5.0, 2.0),
    ]

    root = page.root
    template_hits = [
        1.0 if root.children else 0.0,
        1.0 if any(c.children for c in root.children) else 0.0,
        1.0 if leaves else 0.0,
        1.0 if any(n.is_elem() for n in nodes) else 0.0,
    ]

    sections = list_sections(page)
    section_text = " ".join(
        child.text for section in sections for child in section.children
    )
    entity_fractions = []
    for label in ENTITY_LABELS:
        spans = models.entities(section_text, label) if section_text else []
        entity_fractions.append(min(len(spans) / 10.0, 1.0))

    headers = [n.text for n in nodes if n.children and n.text]
    affinity = max(
        (models.keyword_similarity(h, keywords) for h in headers), default=0.0
    )

    return np.array(layout + template_hits + entity_fractions + [affinity])


def feature_matrix(
    pages: list[WebPage], models: NlpModels, keywords: tuple[str, ...]
) -> np.ndarray:
    """Stacked feature vectors, one row per page."""
    return np.vstack([page_features(p, models, keywords) for p in pages])
