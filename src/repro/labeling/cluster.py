"""Deterministic k-medoids clustering for page-labeling suggestions.

A tiny, dependency-light clustering routine: farthest-point seeding
followed by PAM-style medoid refinement under Euclidean distance.  The
number of pages per task is ~40, so the O(k·n²) refinement is trivial.
"""

from __future__ import annotations

import numpy as np


def pairwise_distances(features: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix between feature rows."""
    diff = features[:, None, :] - features[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def farthest_point_seeds(distances: np.ndarray, k: int) -> list[int]:
    """Greedy maximin seeding: start from the most central point, then
    repeatedly add the point farthest from the chosen set."""
    n = distances.shape[0]
    k = min(k, n)
    first = int(np.argmin(distances.sum(axis=1)))
    seeds = [first]
    while len(seeds) < k:
        remaining = [i for i in range(n) if i not in seeds]
        gaps = [min(distances[i, s] for s in seeds) for i in remaining]
        seeds.append(remaining[int(np.argmax(gaps))])
    return seeds


def k_medoids(
    features: np.ndarray, k: int, max_iterations: int = 20
) -> tuple[list[int], np.ndarray]:
    """(medoid indices, assignment array) for ``k`` clusters.

    >>> import numpy as np
    >>> pts = np.array([[0.0], [0.1], [5.0], [5.1]])
    >>> medoids, assign = k_medoids(pts, 2)
    >>> sorted(set(assign[:2])) != sorted(set(assign[2:]))
    False
    """
    distances = pairwise_distances(features)
    medoids = farthest_point_seeds(distances, k)
    assignment = np.argmin(distances[:, medoids], axis=1)
    for _ in range(max_iterations):
        new_medoids: list[int] = []
        for cluster in range(len(medoids)):
            members = np.where(assignment == cluster)[0]
            if len(members) == 0:
                new_medoids.append(medoids[cluster])
                continue
            within = distances[np.ix_(members, members)].sum(axis=1)
            new_medoids.append(int(members[int(np.argmin(within))]))
        new_assignment = np.argmin(distances[:, new_medoids], axis=1)
        if new_medoids == medoids and np.array_equal(new_assignment, assignment):
            break
        medoids, assignment = new_medoids, new_assignment
    return medoids, assignment
