"""Label-suggestion policy (paper Section 7 "Interactive labeling").

WebQA limits user effort to at most five labeled pages while covering the
schema diversity of the test set: pages are clustered on DSL-derived
features and the user is asked to label one representative (the medoid)
per cluster.
"""

from __future__ import annotations

from ..nlp.models import NlpModels
from ..webtree.node import WebPage
from .cluster import k_medoids
from .features import feature_matrix

#: The paper restricts user queries to at most five pages.
MAX_LABEL_QUERIES = 5


def suggest_pages_to_label(
    pages: list[WebPage],
    models: NlpModels,
    keywords: tuple[str, ...],
    budget: int = MAX_LABEL_QUERIES,
) -> list[int]:
    """Indices of the pages the user should label, most diverse first.

    One medoid per feature cluster, at most ``budget`` of them, ordered by
    cluster size (largest schema group first) so truncating the list still
    covers the dominant schemas.
    """
    if not pages:
        return []
    budget = max(1, min(budget, len(pages)))
    features = feature_matrix(pages, models, keywords)
    medoids, assignment = k_medoids(features, budget)
    sized = sorted(
        ((int((assignment == c).sum()), medoid) for c, medoid in enumerate(medoids)),
        key=lambda pair: -pair[0],
    )
    suggested: list[int] = []
    for _, medoid in sized:
        if medoid not in suggested:
            suggested.append(medoid)
    return suggested
