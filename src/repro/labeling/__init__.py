"""Interactive labeling: clustering-based page suggestion (Section 7)."""

from .cluster import farthest_point_seeds, k_medoids, pairwise_distances
from .features import LOCATOR_TEMPLATES, feature_matrix, page_features
from .suggest import MAX_LABEL_QUERIES, suggest_pages_to_label

__all__ = [
    "farthest_point_seeds",
    "k_medoids",
    "pairwise_distances",
    "LOCATOR_TEMPLATES",
    "feature_matrix",
    "page_features",
    "MAX_LABEL_QUERIES",
    "suggest_pages_to_label",
]
