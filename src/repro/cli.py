"""Command-line interface: fit an extractor, save it, run it on pages.

Fit a program from labeled HTML files and save it::

    python -m repro.cli fit \
        --question "Who are the current PhD students?" \
        --keyword "Current Students" --keyword "PhD" \
        --label jane.html "Robert Smith;Mary Anderson" \
        --label john.html "Sarah Brown" \
        --unlabeled-dir pages/ \
        --out program.json

Label one more page and refit incrementally (requires ``--session`` at
fit time; only branch-synthesis blocks whose example content changed are
re-solved)::

    python -m repro.cli refit --session session.pkl \
        --label extra.html "Alice Chen" \
        --out program.json

Run a saved program on more pages::

    python -m repro.cli extract --program program.json \
        --question "Who are the current PhD students?" \
        --keyword "Current Students" --keyword "PhD" \
        pages/*.html

Answers are printed one page per line as tab-separated values.  Both
``fit`` and ``extract`` accept ``--jobs N`` to spread page work across a
worker-thread pool (useful once evaluation overlaps I/O or GIL-free
model backends; pure-Python evaluation is GIL-bound); outputs are
identical for any jobs count.
"""

from __future__ import annotations

import argparse
import glob
import sys

from .core.webqa import WebQA
from .dsl.eval import run_program
from .dsl.pretty import pretty_program
from .dsl.serialize import load_program, save_program
from .nlp.models import NlpModels
from .runtime import TaskRunner, warm_pages
from .synthesis.examples import LabeledExample
from .synthesis.session import SynthesisSession
from .webtree.builder import page_from_html
from .webtree.node import WebPage


def _load_page(path: str) -> WebPage:
    with open(path, "r", encoding="utf-8") as handle:
        return page_from_html(handle.read(), url=path)


def _split_labels(raw: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in raw.split(";") if part.strip())


def _warm_parallel(pages: list[WebPage], jobs: int) -> None:
    """Pre-build page evaluation indexes, fanning across ``jobs`` threads."""
    runner = TaskRunner(jobs=jobs)
    runner.map(lambda page: warm_pages([page]), pages)


def _report_fit(tool: WebQA, out: str) -> None:
    print(f"training F1: {tool.report.train_f1:.3f}")
    print(f"optimal programs: {tool.report.optimal_count}")
    print(f"saved: {out}")
    print(pretty_program(tool.program))


def cmd_fit(args: argparse.Namespace) -> int:
    train = [
        LabeledExample(_load_page(path), _split_labels(labels))
        for path, labels in args.label
    ]
    unlabeled: list[WebPage] = []
    if args.unlabeled_dir:
        for path in sorted(glob.glob(f"{args.unlabeled_dir}/*.html")):
            unlabeled.append(_load_page(path))
    models = NlpModels.for_corpus(
        [e.page.root.subtree_text() for e in train]
        + [p.root.subtree_text() for p in unlabeled]
    )
    _warm_parallel([e.page for e in train] + unlabeled, args.jobs)
    tool = WebQA(ensemble_size=args.ensemble)
    tool.fit(args.question, tuple(args.keyword), train, unlabeled, models)
    save_program(tool.program, args.out)
    if args.session:
        tool.session.save(args.session)
        print(f"session saved: {args.session}")
    _report_fit(tool, args.out)
    return 0


def cmd_refit(args: argparse.Namespace) -> int:
    session = SynthesisSession.load(args.session)
    new_examples = [
        LabeledExample(_load_page(path), _split_labels(labels))
        for path, labels in args.label
    ]
    session.add_examples(new_examples)
    unlabeled: list[WebPage] = []
    if args.unlabeled_dir:
        for path in sorted(glob.glob(f"{args.unlabeled_dir}/*.html")):
            unlabeled.append(_load_page(path))
    # The session pins the model bundle from the original fit: cached
    # branch spaces were computed under it and stay sound only with it.
    tool = WebQA(config=session.config, ensemble_size=args.ensemble)
    tool.fit_session(session, unlabeled)
    save_program(tool.program, args.out)
    session.save(args.session)
    stats = tool.report.synthesis.stats
    print(
        f"refit: {stats.blocks_synthesized} blocks synthesized, "
        f"{stats.blocks_reused} reused from session"
    )
    print(f"session saved: {args.session}")
    _report_fit(tool, args.out)
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    pages = [_load_page(path) for path in args.pages]
    models = NlpModels.for_corpus([p.root.subtree_text() for p in pages])

    def extract_one(page: WebPage) -> tuple[str, ...]:
        return run_program(program, page, args.question, tuple(args.keyword), models)

    # Page order (and hence output order) is preserved for any --jobs.
    runner = TaskRunner(jobs=args.jobs)
    for page, answers in zip(pages, runner.map(extract_one, pages)):
        print(f"{page.url}\t" + "\t".join(answers))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    print(pretty_program(load_program(args.program)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit", help="synthesize and save an extractor")
    fit.add_argument("--question", required=True)
    fit.add_argument("--keyword", action="append", default=[],
                     help="repeatable; the keyword set K")
    fit.add_argument(
        "--label", nargs=2, action="append", metavar=("HTML", "ANSWERS"),
        required=True,
        help="a labeled page: path and ';'-separated gold answers",
    )
    fit.add_argument("--unlabeled-dir", default=None,
                     help="directory of unlabeled .html pages for selection")
    fit.add_argument("--ensemble", type=int, default=300)
    fit.add_argument("--out", required=True, help="output program JSON path")
    fit.add_argument("--session", default=None,
                     help="also save the synthesis session here, enabling "
                     "incremental `refit` later")
    fit.add_argument("--jobs", type=int, default=1,
                     help="worker threads for page preparation")
    fit.set_defaults(func=cmd_fit)

    refit = sub.add_parser(
        "refit", help="extend a saved session with new labels and re-synthesize"
    )
    refit.add_argument("--session", required=True,
                       help="session file written by `fit --session`; "
                       "updated in place")
    refit.add_argument(
        "--label", nargs=2, action="append", metavar=("HTML", "ANSWERS"),
        required=True,
        help="an additional labeled page: path and ';'-separated gold answers",
    )
    refit.add_argument("--unlabeled-dir", default=None,
                       help="directory of unlabeled .html pages for selection")
    refit.add_argument("--ensemble", type=int, default=300)
    refit.add_argument("--out", required=True, help="output program JSON path")
    refit.set_defaults(func=cmd_refit)

    extract = sub.add_parser("extract", help="run a saved extractor on pages")
    extract.add_argument("--program", required=True)
    extract.add_argument("--question", required=True)
    extract.add_argument("--keyword", action="append", default=[])
    extract.add_argument("--jobs", type=int, default=1,
                         help="worker threads for extraction (order preserved)")
    extract.add_argument("pages", nargs="+", help=".html files to extract from")
    extract.set_defaults(func=cmd_extract)

    show = sub.add_parser("show", help="pretty-print a saved program")
    show.add_argument("--program", required=True)
    show.set_defaults(func=cmd_show)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
