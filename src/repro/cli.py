"""Command-line interface: fit an extractor, save it, run it on pages.

Fit a program from labeled HTML files and save it::

    python -m repro.cli fit \
        --question "Who are the current PhD students?" \
        --keyword "Current Students" --keyword "PhD" \
        --label jane.html "Robert Smith;Mary Anderson" \
        --label john.html "Sarah Brown" \
        --unlabeled-dir pages/ \
        --out program.json

Run a saved program on more pages::

    python -m repro.cli extract --program program.json \
        --question "Who are the current PhD students?" \
        --keyword "Current Students" --keyword "PhD" \
        pages/*.html

Answers are printed one page per line as tab-separated values.
"""

from __future__ import annotations

import argparse
import glob
import sys

from .core.webqa import WebQA
from .dsl.eval import run_program
from .dsl.pretty import pretty_program
from .dsl.serialize import load_program, save_program
from .nlp.models import NlpModels
from .synthesis.examples import LabeledExample
from .webtree.builder import page_from_html
from .webtree.node import WebPage


def _load_page(path: str) -> WebPage:
    with open(path, "r", encoding="utf-8") as handle:
        return page_from_html(handle.read(), url=path)


def _split_labels(raw: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in raw.split(";") if part.strip())


def cmd_fit(args: argparse.Namespace) -> int:
    train = [
        LabeledExample(_load_page(path), _split_labels(labels))
        for path, labels in args.label
    ]
    unlabeled: list[WebPage] = []
    if args.unlabeled_dir:
        for path in sorted(glob.glob(f"{args.unlabeled_dir}/*.html")):
            unlabeled.append(_load_page(path))
    models = NlpModels.for_corpus(
        [e.page.root.subtree_text() for e in train]
        + [p.root.subtree_text() for p in unlabeled]
    )
    tool = WebQA(ensemble_size=args.ensemble)
    tool.fit(args.question, tuple(args.keyword), train, unlabeled, models)
    save_program(tool.program, args.out)
    print(f"training F1: {tool.report.train_f1:.3f}")
    print(f"optimal programs: {tool.report.optimal_count}")
    print(f"saved: {args.out}")
    print(pretty_program(tool.program))
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    pages = [_load_page(path) for path in args.pages]
    models = NlpModels.for_corpus([p.root.subtree_text() for p in pages])
    for page in pages:
        answers = run_program(
            program, page, args.question, tuple(args.keyword), models
        )
        print(f"{page.url}\t" + "\t".join(answers))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    print(pretty_program(load_program(args.program)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit", help="synthesize and save an extractor")
    fit.add_argument("--question", required=True)
    fit.add_argument("--keyword", action="append", default=[],
                     help="repeatable; the keyword set K")
    fit.add_argument(
        "--label", nargs=2, action="append", metavar=("HTML", "ANSWERS"),
        required=True,
        help="a labeled page: path and ';'-separated gold answers",
    )
    fit.add_argument("--unlabeled-dir", default=None,
                     help="directory of unlabeled .html pages for selection")
    fit.add_argument("--ensemble", type=int, default=300)
    fit.add_argument("--out", required=True, help="output program JSON path")
    fit.set_defaults(func=cmd_fit)

    extract = sub.add_parser("extract", help="run a saved extractor on pages")
    extract.add_argument("--program", required=True)
    extract.add_argument("--question", required=True)
    extract.add_argument("--keyword", action="append", default=[])
    extract.add_argument("pages", nargs="+", help=".html files to extract from")
    extract.set_defaults(func=cmd_extract)

    show = sub.add_parser("show", help="pretty-print a saved program")
    show.add_argument("--program", required=True)
    show.set_defaults(func=cmd_show)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
