"""Command-line interface: fit an extractor, save it, run it on pages.

Fit a program from labeled HTML files and save it::

    python -m repro.cli fit \
        --question "Who are the current PhD students?" \
        --keyword "Current Students" --keyword "PhD" \
        --label jane.html "Robert Smith;Mary Anderson" \
        --label john.html "Sarah Brown" \
        --unlabeled-dir pages/ \
        --out program.json

Label one more page and refit incrementally (requires ``--session`` at
fit time; only branch-synthesis blocks whose example content changed are
re-solved)::

    python -m repro.cli refit --session session.pkl \
        --label extra.html "Alice Chen" \
        --out program.json

Run a saved program on more pages::

    python -m repro.cli extract --program program.json \
        --question "Who are the current PhD students?" \
        --keyword "Current Students" --keyword "PhD" \
        pages/*.html

Package a fitted session as a self-contained, versioned **program
artifact** (program + model bundle + fingerprint + fit stats), inspect
one, or benchmark the serving path over it::

    python -m repro.cli export --session session.pkl --out students.artifact.json
    python -m repro.cli inspect --artifact students.artifact.json
    python -m repro.cli serve-bench --artifact students.artifact.json \
        --rounds 3 --jobs 2 pages/*.html

Artifacts load without any synthesis (``fit`` also accepts
``--artifact PATH`` to export directly after fitting).

Answers are printed one page per line as tab-separated values.  Both
``fit`` and ``extract`` accept ``--jobs N`` to spread page work across a
worker-thread pool (useful once evaluation overlaps I/O or GIL-free
model backends; pure-Python evaluation is GIL-bound); outputs are
identical for any jobs count.

Benchmark tooling: measure the micro suite, print a per-benchmark delta
table against the committed baseline, and gate the guarded medians (the
CI bench-regression job in one command)::

    python -m repro.cli bench --compare BENCH_synthesis_micro.json
"""

from __future__ import annotations

import argparse
import glob
import sys

import time

from .core.artifact import ProgramArtifact
from .core.webqa import WebQA
from .dsl.eval import run_program
from .dsl.pretty import pretty_program
from .dsl.serialize import load_program, save_program
from .nlp.models import NlpModels
from .runtime import TaskRunner, warm_pages
from .serving.ingest import ingest_html
from .serving.service import QAService, ServingRequest
from .synthesis.examples import LabeledExample
from .synthesis.session import SynthesisSession
from .webtree.builder import page_from_html
from .webtree.node import WebPage


def _read_text(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_page(path: str) -> WebPage:
    return page_from_html(_read_text(path), url=path)


def _split_labels(raw: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in raw.split(";") if part.strip())


def _warm_parallel(pages: list[WebPage], jobs: int) -> None:
    """Pre-build page evaluation indexes, fanning across ``jobs`` threads."""
    runner = TaskRunner(jobs=jobs)
    runner.map(lambda page: warm_pages([page]), pages)


def _report_fit(tool: WebQA, out: str) -> None:
    print(f"training F1: {tool.report.train_f1:.3f}")
    print(f"optimal programs: {tool.report.optimal_count}")
    print(f"saved: {out}")
    print(pretty_program(tool.program))


def cmd_fit(args: argparse.Namespace) -> int:
    train = [
        LabeledExample(_load_page(path), _split_labels(labels))
        for path, labels in args.label
    ]
    unlabeled: list[WebPage] = []
    if args.unlabeled_dir:
        for path in sorted(glob.glob(f"{args.unlabeled_dir}/*.html")):
            unlabeled.append(_load_page(path))
    models = NlpModels.for_corpus(
        [e.page.root.subtree_text() for e in train]
        + [p.root.subtree_text() for p in unlabeled]
    )
    _warm_parallel([e.page for e in train] + unlabeled, args.jobs)
    tool = WebQA(ensemble_size=args.ensemble)
    tool.fit(args.question, tuple(args.keyword), train, unlabeled, models)
    save_program(tool.program, args.out)
    if args.session:
        tool.session.save(args.session)
        print(f"session saved: {args.session}")
    if args.artifact:
        tool.export_artifact(args.artifact)
        print(f"artifact saved: {args.artifact}")
    _report_fit(tool, args.out)
    return 0


def cmd_refit(args: argparse.Namespace) -> int:
    session = SynthesisSession.load(args.session)
    new_examples = [
        LabeledExample(_load_page(path), _split_labels(labels))
        for path, labels in args.label
    ]
    session.add_examples(new_examples)
    unlabeled: list[WebPage] = []
    if args.unlabeled_dir:
        for path in sorted(glob.glob(f"{args.unlabeled_dir}/*.html")):
            unlabeled.append(_load_page(path))
    # The session pins the model bundle from the original fit: cached
    # branch spaces were computed under it and stay sound only with it.
    tool = WebQA(config=session.config, ensemble_size=args.ensemble)
    tool.fit_session(session, unlabeled)
    save_program(tool.program, args.out)
    session.save(args.session)
    stats = tool.report.synthesis.stats
    print(
        f"refit: {stats.blocks_synthesized} blocks synthesized, "
        f"{stats.blocks_reused} reused from session"
    )
    print(f"session saved: {args.session}")
    _report_fit(tool, args.out)
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    program = load_program(args.program)
    pages = [_load_page(path) for path in args.pages]
    models = NlpModels.for_corpus([p.root.subtree_text() for p in pages])

    def extract_one(page: WebPage) -> tuple[str, ...]:
        return run_program(program, page, args.question, tuple(args.keyword), models)

    # Page order (and hence output order) is preserved for any --jobs.
    runner = TaskRunner(jobs=args.jobs)
    for page, answers in zip(pages, runner.map(extract_one, pages)):
        print(f"{page.url}\t" + "\t".join(answers))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    print(pretty_program(load_program(args.program)))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Fit from a saved session (no new labels) and write an artifact."""
    session = SynthesisSession.load(args.session)
    unlabeled: list[WebPage] = []
    if args.unlabeled_dir:
        for path in sorted(glob.glob(f"{args.unlabeled_dir}/*.html")):
            unlabeled.append(_load_page(path))
    tool = WebQA(config=session.config, ensemble_size=args.ensemble)
    tool.fit_session(session, unlabeled)
    artifact = tool.export_artifact(args.out)
    print(f"artifact saved: {args.out}")
    print(f"model fingerprint: {artifact.model_fingerprint}")
    print(pretty_program(tool.program))
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    artifact = ProgramArtifact.load(args.artifact)
    print(artifact.describe())
    print(pretty_program(artifact.program))
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Serve HTML files through a QAService and report per-stage stats.

    Round 1 is the cold pass (parse + index paid); later rounds replay
    the same requests against the warm page cache.  A direct
    ``predict_batch`` pass over the ingested pages is timed as the
    no-service baseline, so the service-layer overhead is printed
    explicitly.
    """
    htmls = [(path, _read_text(path)) for path in args.pages]
    requests = [
        ServingRequest(route="bench", html=html, url=path)
        for path, html in htmls
    ]
    with QAService(
        jobs=args.jobs, max_batch=args.max_batch, store=args.store
    ) as service:
        tool = service.register("bench", args.artifact)

        round_seconds: list[float] = []
        answers: list[tuple[str, ...]] = []
        for _ in range(max(args.rounds, 1)):
            start = time.perf_counter()
            answers = service.ask_many(requests)
            round_seconds.append(time.perf_counter() - start)

        # Baseline: the same pages, straight through predict_batch.
        # They are warm in the service cache, so re-ingesting resolves
        # to the identical page objects the service answered from.
        pages = [
            ingest_html(html, url=path, cache=service.cache)
            for path, html in htmls
        ]
        start = time.perf_counter()
        direct = tool.predict_batch(pages, jobs=args.jobs)
        direct_seconds = time.perf_counter() - start

    assert direct == answers, "service answers diverged from direct predict"
    n = len(requests)
    print(f"pages: {n}   rounds: {len(round_seconds)}")
    print(
        f"serve cold: {round_seconds[0]:.4f}s "
        f"({n / round_seconds[0]:.1f} pages/s)"
    )
    if len(round_seconds) > 1:
        warm = min(round_seconds[1:])
        print(f"serve warm: {warm:.4f}s ({n / warm:.1f} pages/s)")
        overhead = (warm - direct_seconds) / direct_seconds if direct_seconds else 0
        print(
            f"direct predict_batch: {direct_seconds:.4f}s "
            f"({n / direct_seconds:.1f} pages/s; service overhead "
            f"{overhead * 100:+.1f}%)"
        )
    for key, value in service.stats.as_dict().items():
        print(f"  {key}: {value}")
    for key, value in service.cache.stats.as_dict().items():
        print(f"  page_cache.{key}: {value}")
    return 0


def cmd_corpus_build(args: argparse.Namespace) -> int:
    """Parse a corpus once into a columnar store file."""
    from .serving.corpus import (
        build_corpus_store,
        build_dataset_store,
        html_dir_documents,
    )

    if args.html_dir:
        report = build_corpus_store(html_dir_documents(args.html_dir), args.output)
    else:
        domains = args.domains.split(",") if args.domains else None
        report = build_dataset_store(
            args.output, domains=domains, pages_per_domain=args.pages
        )
    for key, value in report.items():
        print(f"{key}: {value}")
    return 0


def cmd_corpus_update(args: argparse.Namespace) -> int:
    """Publish a new store generation: changed pages in, stale urls out."""
    from .serving.corpus import update_corpus_store

    documents = []
    for html_file, url in args.page or ():
        with open(html_file, "r", encoding="utf-8") as f:
            documents.append((f.read(), url))
    report = update_corpus_store(
        args.store,
        documents,
        remove_urls=tuple(args.remove_url or ()),
        compact=args.compact,
    )
    for key, value in report.items():
        print(f"{key}: {value}")
    return 0


def cmd_corpus_stat(args: argparse.Namespace) -> int:
    """Validate a corpus store and print its shape."""
    from .serving.corpus import corpus_stat

    for key, value in corpus_stat(args.store).items():
        print(f"{key}: {value}")
    return 0


def cmd_corpus_index(args: argparse.Namespace) -> int:
    """Build (or rebuild) the inverted routing index for a store.

    One pass over the store's prebuilt text planes — no HTML parsing —
    fitting the IDF model and packing token/entity postings into the
    memmap ``<store>.idx`` sibling.  Re-running after live updates
    rebuilds from scratch, which is also the repair path when routing
    fails closed on a store/index generation mismatch.
    """
    from .retrieval.index import build_corpus_index

    report = build_corpus_index(args.store)
    for key, value in report.items():
        print(f"{key}: {value}")
    return 0


def cmd_serve_chaos(args: argparse.Namespace) -> int:
    """Run the serve-chaos scenario table on the synthetic corpus.

    Fits one task at the requested scale, then drives the exported
    artifact through every chaos scenario (transient faults, poisoned
    requests, worker crashes, adversarial HTML, overload, deadlines)
    with its invariants asserted — the command fails loudly if any
    fault escapes the failure model.  Defaults are quick-scale so the
    table doubles as a CI smoke check.
    """
    from .experiments.chaos import run_and_render
    from .experiments.common import ExperimentConfig

    config = ExperimentConfig(
        n_pages=args.pages,
        n_train=args.train,
        ensemble_size=args.ensemble,
        seed=args.seed,
        jobs=args.jobs,
        backend=args.backend,
    )
    print(run_and_render(config))
    return 0


def cmd_serve_stat(args: argparse.Namespace) -> int:
    """Stand up a small sharded gateway, drive a burst, print health.

    The operator's-eye view of :meth:`ServingGateway.health`: per-shard
    queue depth, in-flight, pool/dispatcher liveness, breaker state and
    route versions, plus the gateway batching/shedding counters — over
    a seeded synthetic burst so the numbers are reproducible.
    """
    from .serving.gateway import ServingGateway
    from .serving.loadgen import LoadConfig, build_workload

    config = LoadConfig(
        shards=args.shards,
        routes=args.routes,
        pages_per_route=args.pages,
        ensemble=args.ensemble,
        seed=args.seed,
    )
    workload = build_workload(config)
    with ServingGateway(
        shards=config.shards, queue_depth=args.queue_depth
    ) as gateway:
        for route in workload.routes:
            gateway.register(route, workload.tools[route])
        stream = workload.stream[: args.requests]
        gateway.ask_many(stream, strict=False)
        health = gateway.health()

    stats = health["stats"]
    print(f"shards: {health['shards']}  closed: {health['closed']}")
    print(
        f"requests: {health['requests']}  "
        f"span: {health['span_seconds']:.3f}s  "
        f"throughput: {health['throughput_pages_per_s']:.1f} pages/s"
    )
    print(
        f"submitted: {stats['submitted']}  shed: {stats['shed']} "
        f"({100 * stats['shed_rate']:.1f}%)  "
        f"batches: {stats['batches']}  "
        f"mean batch: {stats['mean_batch_size']:.2f}  "
        f"max batch: {stats['max_batch_size']}"
    )
    print(
        f"hot swaps: {stats['hot_swaps']}  rollbacks: {stats['rollbacks']}  "
        f"queue depth bound: {health['queue_depth_bound']}"
    )
    store_gen = health["store_generation"]
    index_gen = health["index_generation"]
    print(
        f"store generation: {'-' if store_gen is None else store_gen}  "
        f"index generation: {'-' if index_gen is None else index_gen}"
    )
    print(
        f"{'shard':>5} {'queue':>5} {'inflight':>8} {'inval':>5} "
        f"{'pool':>6} {'dispatcher':>10}"
    )
    for index in range(health["shards"]):
        pool = "broken" if health["pools_broken"][index] else "ok"
        alive = "alive" if health["dispatchers_alive"][index] else "dead"
        print(
            f"{index:>5} {health['queue_depths'][index]:>5} "
            f"{health['inflight'][index]:>8} "
            f"{health['invalidations'][index]:>5} {pool:>6} {alive:>10}"
        )
    for route in sorted(health["versions"]):
        versions = " ".join(
            (v[:10] if v else "-") for v in health["versions"][route]
        )
        circuits = " ".join(
            str(c) for c in health["circuits"].get(route, [])
        )
        print(f"route {route}: versions [{versions}]  circuits [{circuits}]")
    return 0


def _bench_serve_load(args: argparse.Namespace) -> int:
    """``repro bench serve-load``: measure and gate the serving SLOs.

    Runs the seeded closed-/open-loop load generator over the sharded
    gateway, prints the phase table, and applies the SLO gate: the
    shard-count speedup floor and clean-loop invariants always, plus
    the p95 regression check when ``--compare`` names a committed
    ``BENCH_serving.json`` baseline.
    """
    import json as json_module

    from .serving import loadgen

    config = loadgen.LoadConfig(
        shards=args.shards,
        concurrency=args.concurrency,
        window=args.window,
        requests=args.requests,
        open_requests=args.open_requests,
        open_queue_depth=args.open_queue_depth,
        pages_per_route=args.pages_per_route,
        ensemble=args.ensemble,
        seed=args.seed,
        routed=args.routed,
        routed_top_k=args.routed_top_k,
    )
    baseline = (
        json_module.loads(args.compare.read_text())
        if args.compare is not None
        else None
    )
    if args.fresh is not None:
        payload = json_module.loads(args.fresh.read_text())
        print(f"loaded fresh artifact: {args.fresh}")
    else:
        payload = loadgen.measure_serving(config, output=args.output)
        if args.output is not None:
            print(f"wrote {args.output}")
    print(loadgen.format_serving(payload))
    failures = loadgen.check_serving(payload, baseline)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("serving load gate passed")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure the micro-benchmark suite and/or gate it against a baseline.

    ``repro bench --compare BENCH_synthesis_micro.json`` is the CI
    bench-regression job in one command: measure fresh medians, print
    the per-benchmark delta table (guarded rows marked ``*``), and exit
    non-zero when a guarded median regressed beyond the threshold.
    ``--fresh`` skips measuring and compares an existing artifact;
    ``--smoke`` runs the non-micro benchmark files once (the sanity pass
    of the CI ``benchmarks`` job) instead.  ``repro bench serve-load``
    switches to the serving load generator and its SLO gate (see
    :mod:`repro.serving.loadgen`).
    """
    import json as json_module

    from . import benchtool

    if args.suite == "serve-load":
        return _bench_serve_load(args)
    if args.smoke:
        return benchtool.run_smoke()
    # Read the baseline before measuring: --output may legitimately
    # point at the baseline file (regenerating the committed artifact).
    baseline = (
        json_module.loads(args.compare.read_text())
        if args.compare is not None
        else None
    )
    if args.fresh is not None:
        fresh = json_module.loads(args.fresh.read_text())
        print(f"loaded fresh artifact: {args.fresh}")
    else:
        fresh = benchtool.measure(output=args.output, filter_expr=args.filter)
        if args.output is not None:
            print(f"wrote {args.output}")
        for name, ratio in fresh.get("median_speedups", {}).items():
            print(f"  {name}: {ratio}x")
    if baseline is None:
        return 0
    # Under --filter only a subset was measured; guarded benchmarks that
    # were filtered *out* are absent by design, not vanished — gate only
    # the guarded names the fresh run actually contains.
    guarded = benchtool.GUARDED
    if args.filter:
        guarded = tuple(
            name for name in guarded if name in fresh.get("benchmarks", {})
        )
    rows = benchtool.compare(fresh, baseline, guarded=guarded)
    scale = benchtool.speed_scale(rows)
    print(f"delta vs baseline {args.compare}:")
    print(benchtool.format_compare(rows, args.max_regression, scale))
    failures = [
        row for row in rows if row.fails(args.max_regression, scale)
    ]
    if failures:
        for row in failures:
            ratio = row.ratio
            print(
                f"REGRESSION: {row.name} "
                + (
                    f"({ratio:.2f}x over baseline, "
                    f"{ratio / scale:.2f}x speed-normalized)"
                    if ratio is not None
                    else "(guarded benchmark missing from fresh run)"
                ),
                file=sys.stderr,
            )
        return 1
    print("benchmark regression gate passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit", help="synthesize and save an extractor")
    fit.add_argument("--question", required=True)
    fit.add_argument("--keyword", action="append", default=[],
                     help="repeatable; the keyword set K")
    fit.add_argument(
        "--label", nargs=2, action="append", metavar=("HTML", "ANSWERS"),
        required=True,
        help="a labeled page: path and ';'-separated gold answers",
    )
    fit.add_argument("--unlabeled-dir", default=None,
                     help="directory of unlabeled .html pages for selection")
    fit.add_argument("--ensemble", type=int, default=300)
    fit.add_argument("--out", required=True, help="output program JSON path")
    fit.add_argument("--session", default=None,
                     help="also save the synthesis session here, enabling "
                     "incremental `refit` later")
    fit.add_argument("--artifact", default=None,
                     help="also export a self-contained program artifact here")
    fit.add_argument("--jobs", type=int, default=1,
                     help="worker threads for page preparation")
    fit.set_defaults(func=cmd_fit)

    refit = sub.add_parser(
        "refit", help="extend a saved session with new labels and re-synthesize"
    )
    refit.add_argument("--session", required=True,
                       help="session file written by `fit --session`; "
                       "updated in place")
    refit.add_argument(
        "--label", nargs=2, action="append", metavar=("HTML", "ANSWERS"),
        required=True,
        help="an additional labeled page: path and ';'-separated gold answers",
    )
    refit.add_argument("--unlabeled-dir", default=None,
                       help="directory of unlabeled .html pages for selection")
    refit.add_argument("--ensemble", type=int, default=300)
    refit.add_argument("--out", required=True, help="output program JSON path")
    refit.set_defaults(func=cmd_refit)

    extract = sub.add_parser("extract", help="run a saved extractor on pages")
    extract.add_argument("--program", required=True)
    extract.add_argument("--question", required=True)
    extract.add_argument("--keyword", action="append", default=[])
    extract.add_argument("--jobs", type=int, default=1,
                         help="worker threads for extraction (order preserved)")
    extract.add_argument("pages", nargs="+", help=".html files to extract from")
    extract.set_defaults(func=cmd_extract)

    show = sub.add_parser("show", help="pretty-print a saved program")
    show.add_argument("--program", required=True)
    show.set_defaults(func=cmd_show)

    export = sub.add_parser(
        "export",
        help="package a saved session's learned program as an artifact",
    )
    export.add_argument("--session", required=True,
                        help="session file written by `fit --session`")
    export.add_argument("--unlabeled-dir", default=None,
                        help="directory of unlabeled .html pages for selection")
    export.add_argument("--ensemble", type=int, default=300)
    export.add_argument("--out", required=True,
                        help="output artifact JSON path")
    export.set_defaults(func=cmd_export)

    inspect = sub.add_parser(
        "inspect", help="describe a program artifact (schema, stats, program)"
    )
    inspect.add_argument("--artifact", required=True)
    inspect.set_defaults(func=cmd_inspect)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the serving pipeline over an artifact",
    )
    serve_bench.add_argument("--artifact", required=True)
    serve_bench.add_argument("--rounds", type=int, default=3,
                             help="serving passes (first is cold, rest warm)")
    serve_bench.add_argument("--jobs", type=int, default=1,
                             help="worker threads per micro-batch")
    serve_bench.add_argument("--max-batch", type=int, default=32,
                             help="micro-batch size cap")
    serve_bench.add_argument("--store", default=None,
                             help="corpus store file; cache misses load "
                             "prebuilt indexes instead of parsing")
    serve_bench.add_argument("pages", nargs="+", help=".html files to serve")
    serve_bench.set_defaults(func=cmd_serve_bench)

    corpus = sub.add_parser(
        "corpus",
        help="build or inspect a disk-backed columnar corpus store",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_build = corpus_sub.add_parser(
        "build",
        help="parse a corpus once and persist its index planes",
    )
    corpus_build.add_argument("output", help="store file to write")
    corpus_build.add_argument(
        "--domains", default=None,
        help="comma-separated dataset domains (default: all)")
    corpus_build.add_argument(
        "--pages", type=int, default=25,
        help="pages (seeds) per domain from the synthetic corpus")
    corpus_build.add_argument(
        "--html-dir", default=None,
        help="build from a directory of .html files instead of the "
        "synthetic corpus (urls are the bare filenames)")
    corpus_build.set_defaults(func=cmd_corpus_build)
    corpus_update = corpus_sub.add_parser(
        "update",
        help="publish a new store generation (crash-safe live update)",
    )
    corpus_update.add_argument("store", help="existing store file to update")
    corpus_update.add_argument(
        "--page", nargs=2, action="append", metavar=("HTML_FILE", "URL"),
        help="replace (or add) the page at URL with the file's HTML; "
        "repeatable")
    corpus_update.add_argument(
        "--remove-url", action="append", metavar="URL",
        help="drop the page at URL from the store; repeatable")
    corpus_update.add_argument(
        "--compact", action="store_true",
        help="squash generations into a fresh base afterwards and "
        "collect stale segment files")
    corpus_update.set_defaults(func=cmd_corpus_update)
    corpus_stat_parser = corpus_sub.add_parser(
        "stat", help="validate a store file and print its shape"
    )
    corpus_stat_parser.add_argument("store", help="store file to inspect")
    corpus_stat_parser.set_defaults(func=cmd_corpus_stat)
    corpus_index_parser = corpus_sub.add_parser(
        "index",
        help="build the inverted keyword/entity routing index for a store",
    )
    corpus_index_parser.add_argument(
        "store", help="store file to index (writes <store>.idx beside it)"
    )
    corpus_index_parser.set_defaults(func=cmd_corpus_index)

    from pathlib import Path

    from .benchtool import DEFAULT_MAX_REGRESSION

    bench = sub.add_parser(
        "bench",
        help="measure the micro-benchmark suite and gate it vs a baseline",
    )
    bench.add_argument(
        "suite", nargs="?", choices=("micro", "serve-load"), default="micro",
        help="'micro' (default) measures the synthesis micro suite; "
        "'serve-load' runs the sharded-gateway load generator and its "
        "SLO gate (baseline: BENCH_serving.json)",
    )
    bench.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE",
        help="baseline artifact to print a delta table against "
        "(e.g. BENCH_synthesis_micro.json); guarded regressions exit 1",
    )
    bench.add_argument(
        "--output", type=Path, default=None,
        help="also write the freshly measured artifact here",
    )
    bench.add_argument(
        "--fresh", type=Path, default=None,
        help="use this existing artifact instead of measuring",
    )
    bench.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help=f"maximum allowed fresh/baseline median ratio for guarded "
        f"benchmarks (default {DEFAULT_MAX_REGRESSION})",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="run the non-micro benchmark files once (CI sanity pass) "
        "and exit",
    )
    bench.add_argument(
        "--filter", default=None, metavar="EXPR",
        help="pytest -k expression selecting which micro benchmarks to "
        "measure; guarded names filtered out are not treated as missing",
    )
    from .serving.loadgen import LoadConfig as _LoadDefaults

    serve_load = bench.add_argument_group(
        "serve-load options", "knobs for the 'serve-load' suite"
    )
    serve_load.add_argument(
        "--shards", type=int, default=_LoadDefaults.shards,
        help="replica QAService shards behind the gateway",
    )
    serve_load.add_argument(
        "--concurrency", type=int, default=_LoadDefaults.concurrency,
        help="closed-loop caller threads",
    )
    serve_load.add_argument(
        "--window", type=int, default=_LoadDefaults.window,
        help="outstanding requests per closed-loop caller",
    )
    serve_load.add_argument(
        "--requests", type=int, default=_LoadDefaults.requests,
        help="closed-loop requests per phase",
    )
    serve_load.add_argument(
        "--open-requests", type=int, default=_LoadDefaults.open_requests,
        help="open-loop requests (0 skips the open phase)",
    )
    serve_load.add_argument(
        "--pages-per-route", type=int, default=_LoadDefaults.pages_per_route,
        help="distinct pages per route (sets the working-set size "
        "against the per-replica page cache)",
    )
    serve_load.add_argument(
        "--ensemble", type=int, default=_LoadDefaults.ensemble,
        help="ensemble size for the per-route fits",
    )
    serve_load.add_argument(
        "--seed", type=int, default=_LoadDefaults.seed,
        help="workload seed (corpus, stream order, pacing)",
    )
    serve_load.add_argument(
        "--open-queue-depth", type=int, default=None,
        help="per-shard queue bound for the open-loop phase (default "
        "scales with open request count so shedding is exercised)",
    )
    serve_load.add_argument(
        "--routed", action="store_true",
        help="also run the routed-answering phase: corpus-index top-k "
        "routing vs the exhaustive scan, gated on equal answers and "
        "the corpus-scale speedup floor",
    )
    serve_load.add_argument(
        "--routed-top-k", type=int, default=_LoadDefaults.routed_top_k,
        help="candidate pages per routed question",
    )
    bench.set_defaults(func=cmd_bench)

    serve_stat = sub.add_parser(
        "serve-stat",
        help="drive a seeded burst through a sharded gateway and print "
        "its health surface",
    )
    serve_stat.add_argument("--shards", type=int, default=2)
    serve_stat.add_argument("--routes", type=int, default=2,
                            help="dataset domains to register")
    serve_stat.add_argument("--pages", type=int, default=12,
                            help="distinct pages per route")
    serve_stat.add_argument("--requests", type=int, default=64,
                            help="burst size")
    serve_stat.add_argument("--ensemble", type=int, default=20,
                            help="ensemble size for the per-route fits")
    serve_stat.add_argument("--queue-depth", type=int, default=None,
                            help="per-shard queue bound (default unbounded)")
    serve_stat.add_argument("--seed", type=int, default=0)
    serve_stat.set_defaults(func=cmd_serve_stat)

    serve_chaos = sub.add_parser(
        "serve-chaos",
        help="run the fault-tolerant serving chaos table",
    )
    serve_chaos.add_argument(
        "--pages", type=int, default=10, help="pages per domain"
    )
    serve_chaos.add_argument(
        "--train", type=int, default=3, help="labeled pages for the fit"
    )
    serve_chaos.add_argument(
        "--ensemble", type=int, default=50, help="ensemble size N"
    )
    serve_chaos.add_argument("--seed", type=int, default=0)
    serve_chaos.add_argument(
        "--jobs", type=int, default=2,
        help="service workers per micro-batch (>1 enables the deadline "
        "scenario: deadlines bound waiting on pool workers)",
    )
    serve_chaos.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="worker pool backend (process makes injected crashes kill "
        "real worker processes)",
    )
    serve_chaos.set_defaults(func=cmd_serve_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
