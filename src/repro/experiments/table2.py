"""Table 2: per-domain P/R/F1 for WebQA, BERTQA, HYB and EntExtract.

Paper result (F1): Faculty 0.75 / 0.18 / 0.04 / 0.04; Conference 0.70 /
0.32 / 0.03 / 0.09; Class 0.68 / 0.31 / 0.04 / 0.05; Clinic 0.66 / 0.04 /
0.09 / 0.16 — WebQA wins every domain.
"""

from __future__ import annotations

from ..core.results import DomainSummary, TaskResult, summarize_by_domain
from ..dataset.tasks import DOMAINS
from .common import ExperimentConfig
from .fig12 import TOOL_ORDER, run
from .report import format_table, prf_cells


def summarize(results: list[TaskResult]) -> list[DomainSummary]:
    return summarize_by_domain(results)


def render(results: list[TaskResult]) -> str:
    summaries = {(s.domain, s.tool): s for s in summarize(results)}
    headers = ["Domain"]
    for tool in TOOL_ORDER:
        headers += [f"{tool} P", f"{tool} R", f"{tool} F1"]
    rows = []
    for domain in DOMAINS:
        row = [domain.capitalize()]
        for tool in TOOL_ORDER:
            summary = summaries.get((domain, tool))
            row += prf_cells(summary.score) if summary else ["-", "-", "-"]
        rows.append(row)
    return format_table(
        headers, rows, title="Table 2: evaluation results per domain"
    )


def run_and_render(config: ExperimentConfig | None = None) -> str:
    return render(run(config))
