"""Serving-throughput experiment: the QAService path, measured.

Earlier PRs measured serving with ad-hoc ``predict`` loops inside each
experiment; this table drives the real production path instead — export
each task's program artifact, load it into a
:class:`~repro.serving.QAService`, and serve the task's test pages as
raw HTML through ingest → route → batch → predict.  Three regimes per
task:

* ``direct`` — ``predict_batch`` on pre-parsed pages (no service): the
  baseline ceiling;
* ``serve cold`` — the service fed raw HTML with an empty page cache
  (parse + index paid per page);
* ``serve warm`` — the same requests replayed against the warm cache
  (the steady state of a recrawl-heavy workload).

Accuracy is asserted, not measured: every serving answer must equal the
fitted tool's answer on the same re-parsed page, or the run aborts —
the table is a pure throughput story.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.webqa import WebQA
from ..dataset.tasks import TASKS_BY_ID
from ..serving.ingest import ingest_html
from ..serving.service import QAService, ServingRequest
from ..webtree.html_out import page_to_html
from .common import ExperimentConfig, dataset_for

#: One task per domain keeps the table readable and the run short.
SERVING_TASKS = ("fac_t1", "conf_t1", "class_t2", "clinic_t5")


@dataclass(frozen=True)
class ServingRow:
    """Measured serving regimes for one task."""

    task_id: str
    pages: int
    direct_pps: float
    serve_cold_pps: float
    serve_warm_pps: float
    cache_hit_rate: float

    @property
    def overhead(self) -> float:
        """Warm service throughput loss vs the direct baseline."""
        if self.direct_pps <= 0:
            return 0.0
        return 1.0 - self.serve_warm_pps / self.direct_pps


def _measure_task(
    task_id: str, config: ExperimentConfig, repeats: int
) -> ServingRow:
    task = TASKS_BY_ID[task_id]
    dataset = dataset_for(task, config)
    tool = WebQA(ensemble_size=config.ensemble_size, seed=config.seed).fit(
        task.question,
        task.keywords,
        list(dataset.train),
        list(dataset.test_pages),
        dataset.models,
    )
    artifact = tool.export_artifact(
        task_meta={"task_id": task.task_id, "domain": task.domain}
    )

    requests = [
        ServingRequest(route=task_id, html=page_to_html(page), url=page.url)
        for page in dataset.test_pages
    ]
    with QAService(jobs=config.jobs, backend=config.backend) as service:
        service.register(task_id, artifact)

        # Cold pass: empty cache, parse+index in the measured path.
        start = time.perf_counter()
        cold_answers = service.ask_many(requests)
        cold_seconds = time.perf_counter() - start

        # Warm passes: identical requests, answered off the page cache.
        warm_seconds = float("inf")
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            warm_answers = service.ask_many(requests)
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
        if warm_answers != cold_answers:
            raise AssertionError(f"{task_id}: warm serving diverged from cold")
        # Snapshot the hit rate *before* the baseline probes below touch
        # the cache, so the reported number reflects serving traffic only.
        hit_rate = service.cache.stats.hit_rate()

        # Direct baseline on the same page objects the service answered
        # from (re-ingest resolves cached entries and transparently
        # re-parses any the LRU evicted, so the lists always align
        # request-for-request).
        pages = [
            ingest_html(request.html or "", request.url, cache=service.cache)
            for request in requests
        ]
        start = time.perf_counter()
        direct_answers = tool.predict_batch(pages, jobs=config.jobs)
        direct_seconds = time.perf_counter() - start
        if direct_answers != cold_answers:
            raise AssertionError(f"{task_id}: service diverged from predict_batch")

    n = len(requests)
    return ServingRow(
        task_id=task_id,
        pages=n,
        direct_pps=n / direct_seconds if direct_seconds > 0 else 0.0,
        serve_cold_pps=n / cold_seconds if cold_seconds > 0 else 0.0,
        serve_warm_pps=n / warm_seconds if warm_seconds > 0 else 0.0,
        cache_hit_rate=hit_rate,
    )


def run(config: ExperimentConfig, repeats: int = 3) -> list[ServingRow]:
    """Measure every serving task; rows in :data:`SERVING_TASKS` order."""
    return [
        _measure_task(task_id, config, repeats) for task_id in SERVING_TASKS
    ]


def render(rows: list[ServingRow]) -> str:
    """The serving-throughput table, experiments-runner style."""
    lines = [
        "Serving throughput (QAService vs direct predict_batch; pages/s)",
        "",
        f"{'task':<10} {'pages':>5} {'direct':>10} {'cold':>10} "
        f"{'warm':>10} {'overhead':>9} {'cache':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row.task_id:<10} {row.pages:>5} {row.direct_pps:>10.1f} "
            f"{row.serve_cold_pps:>10.1f} {row.serve_warm_pps:>10.1f} "
            f"{row.overhead * 100:>8.1f}% {row.cache_hit_rate * 100:>5.0f}%"
        )
    return "\n".join(lines)


def run_and_render(config: ExperimentConfig) -> str:
    return render(run(config))
