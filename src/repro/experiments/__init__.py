"""Experiment harness regenerating every table and figure of the paper.

Run ``python -m repro.experiments.runner all`` for the full sweep; see
EXPERIMENTS.md for the recorded paper-versus-measured comparison.
"""

from . import fig12, fig13, fig14, noise, table2, table3, table4, table6
from .common import ExperimentConfig, dataset_for, evaluate_tool, paper_scale, quick_scale

__all__ = [
    "fig12",
    "fig13",
    "fig14",
    "noise",
    "table2",
    "table3",
    "table4",
    "table6",
    "ExperimentConfig",
    "dataset_for",
    "evaluate_tool",
    "paper_scale",
    "quick_scale",
]
