"""Shared experiment plumbing: run tools on task datasets, collect scores.

Every experiment module builds on :func:`evaluate_tool` /
:func:`run_comparison`; the ``ExperimentConfig`` controls corpus scale so
benchmarks can run reduced versions of the paper's full sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..baselines.base import ExtractionTool
from ..core.results import TaskResult
from ..dataset.corpus import TaskDataset, load_task_dataset
from ..dataset.tasks import TASKS, Task
from ..metrics.scores import score_examples
from ..runtime import TaskRunner, warm_pages

#: Factory producing a fresh tool per task (tools hold per-task state).
#: With the ``process`` backend, factories must be picklable (a class,
#: a module-level function or a ``functools.partial`` — not a lambda).
ToolFactory = Callable[[], ExtractionTool]


@dataclass(frozen=True)
class ExperimentConfig:
    """Corpus and system scale for one experiment run.

    The defaults are a reduced-but-faithful version of the paper's setup
    (40 pages, 5 labels, N=1000) sized so the whole suite runs in minutes
    on a laptop; pass ``paper_scale()`` for the full thing.

    ``jobs``/``backend`` control the parallel task runtime: sweeps fan
    independent tasks across a :class:`~repro.runtime.TaskRunner` pool.
    Results are deterministic and identically ordered for any ``jobs``.
    """

    n_pages: int = 20
    n_train: int = 4
    ensemble_size: int = 200
    seed: int = 0
    use_label_suggestions: bool = True
    jobs: int = 1
    backend: str = "thread"


def paper_scale(
    seed: int = 0,
    ensemble_size: int = 1000,
    jobs: int = 1,
    backend: str = "thread",
) -> ExperimentConfig:
    """The paper's corpus scale (~40 pages, 5 labels, N=1000).

    Corpus size is fixed; seed, ensemble size and runtime parallelism
    remain caller-selectable so ``--paper-scale`` composes with the
    other CLI flags instead of silently discarding them.
    """
    return ExperimentConfig(
        n_pages=40, n_train=5,
        ensemble_size=ensemble_size, seed=seed, jobs=jobs, backend=backend,
    )


def quick_scale() -> ExperimentConfig:
    """Small corpus for smoke tests and CI benchmarks."""
    return ExperimentConfig(n_pages=10, n_train=3, ensemble_size=50)


def dataset_for(task: Task, config: ExperimentConfig) -> TaskDataset:
    return load_task_dataset(
        task,
        n_pages=config.n_pages,
        n_train=config.n_train,
        seed=config.seed,
        use_label_suggestions=config.use_label_suggestions,
    )


def clear_process_caches() -> None:
    """Reset the process-wide NLP/metric memo tables.

    The pure-function caches (NER span extraction, token-F1 triples,
    Substring segment splits) are keyed on content and shared by every
    model bundle in the process — exactly what serving wants, but a
    timing hazard for A/B experiments: the first variant measured warms
    them for the rest.  Timing harnesses (Table 3's ablation) call this
    between variants so every variant starts equally cold.  Results are
    never affected — the caches memoize pure functions.
    """
    from ..dsl.eval import _segments
    from ..dsl.productions import expand_extractor, expand_locator, gen_guards
    from ..metrics.tokens import _string_tokens, _token_prf_cached
    from ..nlp.ner import _extract_entities_cached
    from ..synthesis.examples import _string_memo_cache

    _extract_entities_cached.cache_clear()
    _token_prf_cached.cache_clear()
    _string_tokens.cache_clear()
    _segments.cache_clear()
    expand_extractor.cache_clear()
    expand_locator.cache_clear()
    gen_guards.cache_clear()
    _string_memo_cache.clear()


def evaluate_tool(
    tool: ExtractionTool, dataset: TaskDataset
) -> TaskResult:
    """Fit ``tool`` on a task and score it on the task's test set."""
    task = dataset.task
    start = time.perf_counter()
    tool.fit(
        task.question,
        task.keywords,
        list(dataset.train),
        list(dataset.test_pages),
        dataset.models,
    )
    seconds = time.perf_counter() - start
    predictions = tool.predict_all(list(dataset.test_pages))
    score = score_examples(zip(predictions, dataset.test_gold))
    return TaskResult(
        task_id=task.task_id,
        domain=task.domain,
        tool=tool.name,
        score=score,
        seconds=seconds,
    )


def _evaluate_task_job(
    job: tuple[Task, tuple[ToolFactory, ...], ExperimentConfig],
) -> list[TaskResult]:
    """One worker unit: build a task's dataset, warm it, run every tool.

    The job carries only the task *description* plus the config; the
    dataset (pages, models) is rebuilt worker-side from the seeded
    generators, so process workers never pickle page trees.
    """
    task, factories, config = job
    dataset = dataset_for(task, config)
    warm_pages(dataset.all_pages())
    return [evaluate_tool(factory(), dataset) for factory in factories]


def run_comparison(
    tool_factories: dict[str, ToolFactory],
    config: ExperimentConfig,
    tasks: tuple[Task, ...] = TASKS,
) -> list[TaskResult]:
    """Every tool on every task; the raw material for Tables 2/6, Fig 12.

    Tasks fan out across ``config.jobs`` workers (``config.backend``
    pool); within a task, tools run sequentially against the shared
    dataset.  Result order is always tasks-major, factory-minor —
    identical to the serial sweep regardless of ``jobs``.
    """
    runner = TaskRunner(jobs=config.jobs, backend=config.backend)
    factories = tuple(tool_factories.values())
    per_task = runner.map(
        _evaluate_task_job, [(task, factories, config) for task in tasks]
    )
    return [result for task_results in per_task for result in task_results]
