"""Table 4: transductive program selection vs Random / Shortest.

Paper result (computed over 20 runs): transductive selection improves
mean F1 by ~6% over both baselines and reduces variance by ~1550×.

Per task we synthesize once, then draw 20 seeds; each seed yields one
program per method (transductive / random / shortest), scored on the test
set.  Reported: percentage improvement in mean F1 and the ratio of
baseline variance to transductive variance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.scores import mean, score_examples, variance
from ..selection.baselines import select_random, select_shortest
from ..selection.transductive import run_on_pages, select_program
from ..synthesis.top import synthesize
from .common import ExperimentConfig, dataset_for
from .report import format_table

#: Number of repeated runs per task (paper footnote 11: 20).
DEFAULT_RUNS = 20

#: Representative slice: tasks with large optimal-program spaces, where
#: selection actually matters.
DEFAULT_TASK_IDS = ("fac_t1", "fac_t5", "conf_t2", "class_t4", "clinic_t1")


@dataclass(frozen=True)
class SelectionRow:
    """One Table 4 row: a baseline compared against transductive."""

    technique: str
    f1_improvement_pct: float
    variance_reduction: float


@dataclass(frozen=True)
class SelectionRawResult:
    """Per-method F1 samples, for tests and deeper analysis."""

    transductive: list[float]
    random: list[float]
    shortest: list[float]


def run_task(
    task_id: str, config: ExperimentConfig, runs: int = DEFAULT_RUNS
) -> SelectionRawResult:
    from ..dataset.tasks import TASKS_BY_ID

    dataset = dataset_for(TASKS_BY_ID[task_id], config)
    result = synthesize(
        list(dataset.train),
        dataset.task.question,
        dataset.task.keywords,
        dataset.models,
    )
    pages = list(dataset.test_pages)

    def test_f1(program) -> float:
        outputs = run_on_pages(
            program, pages, dataset.task.question, dataset.task.keywords,
            dataset.models,
        )
        return score_examples(zip(outputs, dataset.test_gold)).f1

    samples = SelectionRawResult([], [], [])
    for seed in range(runs):
        chosen = select_program(
            result, pages, dataset.models,
            ensemble_size=config.ensemble_size, seed=seed,
        ).program
        samples.transductive.append(test_f1(chosen))
        samples.random.append(test_f1(select_random(result, seed=seed)))
        samples.shortest.append(test_f1(select_shortest(result, seed=seed)))
    return samples


def run(
    config: ExperimentConfig | None = None,
    task_ids: tuple[str, ...] = DEFAULT_TASK_IDS,
    runs: int = DEFAULT_RUNS,
) -> list[SelectionRow]:
    config = config or ExperimentConfig()
    all_samples = [run_task(task_id, config, runs) for task_id in task_ids]

    trans_mean = mean([mean(s.transductive) for s in all_samples])
    trans_var = mean([variance(s.transductive) for s in all_samples])
    rows: list[SelectionRow] = []
    for name, getter in (("Random", lambda s: s.random),
                         ("Shortest", lambda s: s.shortest)):
        base_mean = mean([mean(getter(s)) for s in all_samples])
        base_var = mean([variance(getter(s)) for s in all_samples])
        improvement = (
            (trans_mean - base_mean) / base_mean * 100.0 if base_mean else 0.0
        )
        # The consensus choice is usually byte-identical across seeds, so
        # its variance is exactly 0; floor it so the ratio stays finite
        # (the paper's ~1550x sits in the same "orders of magnitude"
        # regime this produces).
        reduction = base_var / max(trans_var, 1e-5)
        rows.append(SelectionRow(name, improvement, reduction))
    return rows


def render(rows: list[SelectionRow]) -> str:
    table_rows = [
        [
            row.technique,
            f"{row.f1_improvement_pct:+.1f}%",
            f"{row.variance_reduction:.0f}x",
        ]
        for row in rows
    ]
    return format_table(
        ["Technique", "% improvement in F1", "Reduction in variance"],
        table_rows,
        title="Table 4: evaluation of transductive learning",
    )


def run_and_render(config: ExperimentConfig | None = None) -> str:
    return render(run(config))
