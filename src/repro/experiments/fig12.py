"""Figure 12: average F1/precision/recall, WebQA vs the three baselines.

Paper result: WebQA leads on all three metrics (avg F1 ≈ 0.70); BERTQA is
the best baseline but with much lower recall; HYB and EntExtract are far
behind.
"""

from __future__ import annotations

from functools import partial

from ..baselines import BertQaBaseline, EntExtractBaseline, HybBaseline
from ..core.results import TaskResult, overall_scores
from ..core.webqa import WebQA
from ..metrics.scores import Score
from .common import ExperimentConfig, ToolFactory, run_comparison
from .report import format_table, prf_cells

#: Tool lineup of Figure 12, in the paper's order.
TOOL_ORDER = ("WebQA", "BERTQA", "HYB", "EntExtract")


def tool_factories(config: ExperimentConfig) -> dict[str, ToolFactory]:
    # partial, not lambda: factories must survive pickling into process
    # pool workers (see repro.runtime).
    return {
        "WebQA": partial(WebQA, ensemble_size=config.ensemble_size, seed=config.seed),
        "BERTQA": BertQaBaseline,
        "HYB": HybBaseline,
        "EntExtract": EntExtractBaseline,
    }


def run(config: ExperimentConfig | None = None) -> list[TaskResult]:
    """All 25 tasks × 4 tools; returns the raw per-task results."""
    config = config or ExperimentConfig()
    return run_comparison(tool_factories(config), config)


def summarize(results: list[TaskResult]) -> dict[str, Score]:
    """Mean P/R/F1 per tool — the bars of Figure 12."""
    return overall_scores(results)


def render(results: list[TaskResult]) -> str:
    scores = summarize(results)
    rows = [
        [tool] + prf_cells(scores[tool])
        for tool in TOOL_ORDER
        if tool in scores
    ]
    return format_table(
        ["Tool", "P", "R", "F1"], rows,
        title="Figure 12: comparison between WebQA and other tools (averages)",
    )
