"""Table 6: per-task P/R/F1 breakdown for all four tools.

The full 25-row version of Table 2; paper Appendix D.
"""

from __future__ import annotations

from ..core.results import TaskResult
from ..dataset.tasks import TASKS
from .common import ExperimentConfig
from .fig12 import TOOL_ORDER, run
from .report import format_table, prf_cells


def render(results: list[TaskResult]) -> str:
    by_key = {(r.task_id, r.tool): r for r in results}
    headers = ["Task"]
    for tool in TOOL_ORDER:
        headers += [f"{tool} P", f"{tool} R", f"{tool} F1"]
    rows = []
    for task in TASKS:
        row = [task.task_id]
        for tool in TOOL_ORDER:
            result = by_key.get((task.task_id, tool))
            row += prf_cells(result.score) if result else ["-", "-", "-"]
        rows.append(row)
    return format_table(
        headers, rows, title="Table 6: evaluation results per task"
    )


def run_and_render(config: ExperimentConfig | None = None) -> str:
    return render(run(config))
