"""Extension experiment: robustness to neural-module error.

Not a paper artifact — this probes the paper's *premise* (Section 2,
"Key idea #2"): the F1-optimal formulation exists because the neural
modules err.  We make the error rate a dial (seeded predicate flips via
:class:`~repro.nlp.noise.NoisyNlpModels`) and measure end-to-end test F1
as the modules degrade.  The expected shape: graceful decay, not a
cliff — the synthesizer routes around broken predicates by picking
different programs, until noise overwhelms every signal.
"""

from __future__ import annotations

from ..core.webqa import WebQA
from ..metrics.scores import score_examples
from ..nlp.noise import NoisyNlpModels
from .common import ExperimentConfig, dataset_for
from .report import format_series

DEFAULT_ERROR_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
DEFAULT_TASK_IDS = ("fac_t1", "conf_t2", "clinic_t1")


def run(
    config: ExperimentConfig | None = None,
    task_ids: tuple[str, ...] = DEFAULT_TASK_IDS,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
) -> dict[str, list[float]]:
    """Per-task F1 series over neural-module error rates."""
    from ..dataset.tasks import TASKS_BY_ID

    config = config or ExperimentConfig()
    series: dict[str, list[float]] = {}
    for task_id in task_ids:
        dataset = dataset_for(TASKS_BY_ID[task_id], config)
        f1s: list[float] = []
        for rate in error_rates:
            models = (
                dataset.models
                if rate == 0.0
                else NoisyNlpModels(dataset.models, error_rate=rate, seed=config.seed)
            )
            tool = WebQA(ensemble_size=config.ensemble_size, seed=config.seed)
            tool.fit(
                dataset.task.question,
                dataset.task.keywords,
                list(dataset.train),
                list(dataset.test_pages),
                models,
            )
            predictions = tool.predict_all(list(dataset.test_pages))
            f1s.append(score_examples(zip(predictions, dataset.test_gold)).f1)
        series[task_id] = f1s
    return series


def render(
    series: dict[str, list[float]],
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
) -> str:
    return format_series(
        "error rate", list(error_rates), series,
        title="Extension: end-to-end F1 vs neural-module error rate",
    )


def run_and_render(config: ExperimentConfig | None = None) -> str:
    return render(run(config))
