"""Persist experiment results as JSON artifacts.

Experiment runs are minutes-long; persisting their raw results lets you
re-render tables, compare runs across code changes, and archive the
numbers EXPERIMENTS.md quotes.  Artifacts are plain JSON with a small
metadata header (experiment name, corpus scale, timestamp supplied by
the caller).

The generic artifact plumbing (canonical text form, header shape, file
IO) lives in :mod:`repro.persist`, shared with ``benchmarks/persist.py``
and the program-artifact layer; this module only contributes the
experiment-specific row encodings.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from ..core.results import TaskResult
from ..metrics.scores import Score
from ..persist import artifact_text, tagged_payload
from .common import ExperimentConfig


def _config_dict(config: ExperimentConfig) -> dict[str, Any]:
    return {
        "n_pages": config.n_pages,
        "n_train": config.n_train,
        "ensemble_size": config.ensemble_size,
        "seed": config.seed,
        "use_label_suggestions": config.use_label_suggestions,
    }


def results_to_json(
    experiment: str,
    results: list[TaskResult],
    config: ExperimentConfig,
    timestamp: str = "",
) -> str:
    """Serialize comparison-style results (fig12/table2/table6)."""
    payload = tagged_payload(
        "experiment",
        experiment,
        config=_config_dict(config),
        timestamp=timestamp,
        results=[
            {
                "task_id": r.task_id,
                "domain": r.domain,
                "tool": r.tool,
                "precision": r.score.precision,
                "recall": r.score.recall,
                "f1": r.score.f1,
                "seconds": r.seconds,
            }
            for r in results
        ],
    )
    return artifact_text(payload)


def results_from_json(text: str) -> tuple[str, list[TaskResult]]:
    """Inverse of :func:`results_to_json`; returns (experiment, results)."""
    payload = json.loads(text)
    results = [
        TaskResult(
            task_id=entry["task_id"],
            domain=entry["domain"],
            tool=entry["tool"],
            score=Score(entry["precision"], entry["recall"], entry["f1"]),
            seconds=entry.get("seconds", 0.0),
        )
        for entry in payload["results"]
    ]
    return payload["experiment"], results


def series_to_json(
    experiment: str,
    xs: list[Any],
    series: dict[str, list[float]],
    config: ExperimentConfig,
    timestamp: str = "",
) -> str:
    """Serialize figure-style results (fig13/fig14/noise series)."""
    return artifact_text(
        tagged_payload(
            "experiment",
            experiment,
            config=_config_dict(config),
            timestamp=timestamp,
            xs=list(xs),
            series={name: list(values) for name, values in series.items()},
        )
    )


def series_from_json(text: str) -> tuple[str, list[Any], dict[str, list[float]]]:
    """Inverse of :func:`series_to_json`."""
    payload = json.loads(text)
    return payload["experiment"], payload["xs"], payload["series"]


def rows_to_json(
    experiment: str, rows: list[Any], config: ExperimentConfig, timestamp: str = ""
) -> str:
    """Serialize dataclass-row results (table3/table4 ablation rows)."""
    return artifact_text(
        tagged_payload(
            "experiment",
            experiment,
            config=_config_dict(config),
            timestamp=timestamp,
            rows=[asdict(row) for row in rows],
        )
    )
