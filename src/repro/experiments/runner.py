"""Command-line experiment runner.

Regenerates every table and figure of the paper's evaluation::

    python -m repro.experiments.runner fig12            # Figure 12
    python -m repro.experiments.runner table2           # Table 2
    python -m repro.experiments.runner table3           # Table 3
    python -m repro.experiments.runner table4           # Table 4
    python -m repro.experiments.runner table6           # Table 6
    python -m repro.experiments.runner fig13            # Figure 13
    python -m repro.experiments.runner fig14            # Figure 14
    python -m repro.experiments.runner noise            # extension: module-error robustness
    python -m repro.experiments.runner serving          # extension: QAService throughput
    python -m repro.experiments.runner chaos            # extension: fault-tolerant serving
    python -m repro.experiments.runner all              # everything

Scale flags: ``--pages N --train N --ensemble N`` (defaults are a reduced
corpus; ``--paper-scale`` restores the paper's 40/5/1000 and composes
with explicit ``--seed``/``--ensemble`` overrides).  Runtime flags:
``--jobs N`` fans independent tasks across N workers (``--backend
thread|process``); results are identical for any jobs count.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from . import (
    chaos,
    fig12,
    fig13,
    fig14,
    noise,
    serving,
    table2,
    table3,
    table4,
    table6,
)
from .common import ExperimentConfig, paper_scale

EXPERIMENTS = (
    "fig12", "table2", "table3", "table4", "table6", "fig13", "fig14",
    "noise", "serving", "chaos",
)


def _comparison_text(config: ExperimentConfig) -> dict[str, str]:
    """fig12/table2/table6 share one expensive sweep; run it once."""
    results = fig12.run(config)
    return {
        "fig12": fig12.render(results),
        "table2": table2.render(results),
        "table6": table6.render(results),
    }


def run_experiment(name: str, config: ExperimentConfig) -> str:
    if name in ("fig12", "table2", "table6"):
        return _comparison_text(config)[name]
    if name == "table3":
        return table3.run_and_render(config)
    if name == "table4":
        return table4.run_and_render(config)
    if name == "fig13":
        return fig13.run_and_render(config)
    if name == "fig14":
        return fig14.run_and_render(config)
    if name == "noise":
        return noise.run_and_render(config)
    if name == "serving":
        return serving.run_and_render(config)
    if name == "chaos":
        return chaos.run_and_render(config)
    raise ValueError(f"unknown experiment {name!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    parser.add_argument(
        "--pages", type=int, default=None,
        help="pages per domain (default: 20, or 40 under --paper-scale)",
    )
    parser.add_argument(
        "--train", type=int, default=None,
        help="labeled pages per task (default: 4, or 5 under --paper-scale)",
    )
    parser.add_argument(
        "--ensemble", type=int, default=None,
        help="ensemble size N (default: 200, or 1000 under --paper-scale)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="default to the paper's scale (40 pages, 5 labels, N=1000); "
        "any explicit scale/seed/jobs flag still applies on top",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel task workers (1 = serial; results are identical)",
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="worker pool backend for --jobs > 1",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Resolve CLI flags into an :class:`ExperimentConfig`.

    ``--paper-scale`` only moves the *defaults* to the paper's numbers;
    every explicitly given flag (``--pages``, ``--train``, ``--seed``,
    ``--ensemble``, ``--jobs``) composes with it instead of being
    silently discarded.
    """
    if args.paper_scale:
        base = paper_scale(
            seed=args.seed, jobs=args.jobs, backend=args.backend
        )
    else:
        base = ExperimentConfig(
            seed=args.seed, jobs=args.jobs, backend=args.backend
        )
    overrides = {
        name: value
        for name, value in (
            ("n_pages", args.pages),
            ("n_train", args.train),
            ("ensemble_size", args.ensemble),
        )
        if value is not None
    }
    return replace(base, **overrides) if overrides else base


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    if args.experiment == "all":
        shared = _comparison_text(config)
    for name in names:
        start = time.perf_counter()
        if args.experiment == "all" and name in shared:
            text = shared[name]
        else:
            text = run_experiment(name, config)
        elapsed = time.perf_counter() - start
        print(text)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
