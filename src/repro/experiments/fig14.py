"""Figure 14: F1 versus number of labeled examples (conference tasks).

Paper result (Appendix C.2): F1 generally degrades as training examples
are removed, but sensitivity is task-dependent — conf_t5 works from a
single example while conf_t4 drops sharply with even one fewer label.
"""

from __future__ import annotations

from ..core.webqa import WebQA
from ..dataset.corpus import load_task_dataset
from ..dataset.tasks import tasks_for_domain
from ..metrics.scores import score_examples
from .common import ExperimentConfig
from .report import format_series

DEFAULT_EXAMPLE_COUNTS = (1, 2, 3, 4, 5)


def run(
    config: ExperimentConfig | None = None,
    example_counts: tuple[int, ...] = DEFAULT_EXAMPLE_COUNTS,
) -> dict[str, list[float]]:
    """Per-task F1 series over the number of labeled examples."""
    config = config or ExperimentConfig()
    series: dict[str, list[float]] = {}
    for task in tasks_for_domain("conference"):
        f1s: list[float] = []
        for n_train in example_counts:
            dataset = load_task_dataset(
                task,
                n_pages=config.n_pages,
                n_train=n_train,
                seed=config.seed,
                use_label_suggestions=config.use_label_suggestions,
            )
            tool = WebQA(ensemble_size=config.ensemble_size, seed=config.seed)
            tool.fit(
                task.question, task.keywords,
                list(dataset.train), list(dataset.test_pages), dataset.models,
            )
            predictions = tool.predict_all(list(dataset.test_pages))
            f1s.append(score_examples(zip(predictions, dataset.test_gold)).f1)
        series[task.task_id] = f1s
    return series


def render(
    series: dict[str, list[float]],
    example_counts: tuple[int, ...] = DEFAULT_EXAMPLE_COUNTS,
) -> str:
    return format_series(
        "# examples", list(example_counts), series,
        title="Figure 14: F1 per conference task vs number of labeled examples",
    )


def run_and_render(config: ExperimentConfig | None = None) -> str:
    return render(run(config))
