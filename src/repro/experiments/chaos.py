"""Serve-chaos experiment: the fault-tolerant serving path, measured.

Every scenario drives the *same* exported artifact through a fresh
:class:`~repro.serving.QAService` under a different deterministic
failure regime (``repro.serving.faults``), and the table reports what
the failure model promises: failures stay structured and isolated,
transient faults are retried to success, hostile pages degrade instead
of crashing, overload is shed, and throughput under chaos stays in the
same decade as the clean baseline.

Invariants are asserted, not eyeballed: a scenario whose outcome
deviates from its plan (an un-planned failure, a clean request that
errored, answers diverging from the fitted tool) aborts the run.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass

from ..core.errors import IngestError
from ..core.webqa import WebQA
from ..dataset.corpus import generate_page
from ..dataset.tasks import TASKS_BY_ID
from ..serving.faults import ALWAYS, FaultInjector, FaultPlan, adversarial_corpus
from ..serving.gateway import ServingGateway
from ..serving.live import LiveCorpus
from ..serving.service import QAService, RetryPolicy, ServingRequest
from ..webtree.html_out import page_to_html
from ..webtree.store import CorpusStoreWriter, collect_garbage
from .common import ExperimentConfig, dataset_for

#: The one serving task the chaos table exercises (routes are
#: orthogonal to the failure machinery; one is enough).
CHAOS_TASK = "fac_t1"

#: Backoff tuned for a table run: deterministic, but near-instant.
_FAST_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.001,
                          max_backoff_seconds=0.002)


@dataclass(frozen=True)
class ChaosRow:
    """Outcome counters for one chaos scenario."""

    scenario: str
    requests: int
    ok: int
    failed: int
    rejected: int
    deadline: int
    degraded: int
    retries: int
    pages_per_s: float


class _Askers:
    """Background query storm: threads hammering ``ask_many`` in a loop.

    The concurrency side of the hot-swap invariants: while the routing
    table is republished underneath them, every request must still
    answer (``ok``), and — when ``expected`` is given — answer
    *identically* (all swapped versions serve the same content, so any
    divergence is a torn read of the routing table).
    """

    def __init__(self, svc, requests, expected=None, threads=3):
        self.svc = svc
        self.requests = requests
        self.expected = expected
        self.stop = threading.Event()
        self.failures: list = []
        self.results: list = []
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._loop, daemon=True)
            for _ in range(threads)
        ]

    def _loop(self) -> None:
        while not self.stop.is_set():
            batch = self.svc.ask_many(self.requests, strict=False)
            with self._lock:
                self.results.extend(batch)
                for index, result in enumerate(batch):
                    if not result.ok:
                        self.failures.append(result)
                    elif (
                        self.expected is not None
                        and result.answer != self.expected[index]
                    ):
                        self.failures.append(result)

    def __enter__(self) -> "_Askers":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop.set()
        for thread in self._threads:
            thread.join()


def _summarize(scenario, results, elapsed) -> ChaosRow:
    ok = sum(1 for r in results if r.ok)
    stages = [r.error.stage for r in results if r.error is not None]
    return ChaosRow(
        scenario=scenario,
        requests=len(results),
        ok=ok,
        failed=len(results) - ok,
        rejected=stages.count("admission"),
        deadline=stages.count("deadline"),
        degraded=sum(1 for r in results if r.degraded),
        retries=sum(r.retries for r in results),
        pages_per_s=len(results) / elapsed if elapsed > 0 else 0.0,
    )


def run(config: ExperimentConfig) -> list[ChaosRow]:
    """All chaos scenarios over one artifact; one :class:`ChaosRow` each."""
    task = TASKS_BY_ID[CHAOS_TASK]
    dataset = dataset_for(task, config)
    tool = WebQA(ensemble_size=config.ensemble_size, seed=config.seed).fit(
        task.question,
        task.keywords,
        list(dataset.train),
        list(dataset.test_pages),
        dataset.models,
    )
    artifact = tool.export_artifact()
    expected = [tool.predict(page) for page in dataset.test_pages]
    requests = [
        ServingRequest(route=CHAOS_TASK, html=page_to_html(page), url=page.url)
        for page in dataset.test_pages
    ]
    n = len(requests)

    def service(**kwargs) -> QAService:
        kwargs.setdefault("jobs", config.jobs)
        kwargs.setdefault("backend", config.backend)
        kwargs.setdefault("retry_policy", _FAST_RETRY)
        svc = QAService(**kwargs)
        svc.register(CHAOS_TASK, artifact)
        return svc

    def serve(svc, reqs, **kwargs):
        start = time.perf_counter()
        results = svc.ask_many(reqs, strict=False, **kwargs)
        return results, time.perf_counter() - start

    rows: list[ChaosRow] = []

    # -- baseline: no faults; must answer exactly like the fitted tool.
    with service() as svc:
        results, elapsed = serve(svc, requests)
    if [r.answer for r in results] != expected:
        raise AssertionError("chaos baseline diverged from fitted tool")
    rows.append(_summarize("baseline", results, elapsed))

    # -- transient: every request faults once on predict, some on ingest;
    # bounded retry must cure all of them.
    plan = FaultPlan(
        ingest_faults={i: 1 for i in range(0, n, 3)},
        predict_faults={i: 1 for i in range(n)},
        seed=config.seed,
    )
    with service(fault_injector=plan) as svc:
        results, elapsed = serve(svc, requests)
    if not all(r.ok for r in results):
        raise AssertionError("transient scenario left unrecovered failures")
    rows.append(_summarize("transient", results, elapsed))

    # -- poisoned: a fifth of the requests fail terminally; the rest of
    # the micro-batch must be untouched.
    poisoned = {i: ALWAYS for i in range(0, n, 5)}
    plan = FaultPlan(predict_faults=poisoned, seed=config.seed)
    with service(fault_injector=plan) as svc:
        results, elapsed = serve(svc, requests)
    for index, result in enumerate(results):
        if (index in poisoned) == result.ok:
            raise AssertionError("poisoned scenario isolation violated")
    rows.append(_summarize("poisoned", results, elapsed))

    # -- crash: injected worker deaths (real pool kills on the process
    # backend, transient predict faults on threads); retry must recover.
    plan = FaultPlan(pool_crashes=frozenset({0, n // 2}), seed=config.seed)
    with service(fault_injector=plan) as svc:
        results, elapsed = serve(svc, requests)
    if not all(r.ok for r in results):
        raise AssertionError("crash scenario left unrecovered failures")
    rows.append(_summarize("crash", results, elapsed))

    # -- adversarial: hostile generated pages mixed into real traffic;
    # everything answers (degraded at worst) under the default limits.
    hostile = [
        ServingRequest(route=CHAOS_TASK, html=html, url=f"adv://{kind}")
        for kind, html in adversarial_corpus(seed=config.seed)
    ]
    with service() as svc:
        results, elapsed = serve(svc, requests + hostile)
    if not all(r.ok for r in results):
        raise AssertionError("adversarial pages crashed the serving path")
    rows.append(_summarize("adversarial", results, elapsed))

    # -- overload: admission bound below the offered load; overflow is
    # shed instantly, admitted requests still answer correctly.
    bound = max(1, n // 2)
    with service(max_inflight=bound) as svc:
        results, elapsed = serve(svc, requests)
    if sum(1 for r in results if r.ok) != bound:
        raise AssertionError("admission bound not enforced")
    rows.append(_summarize("overload", results, elapsed))

    # -- deadline: injected latency against a tight deadline (pool
    # backends only: the deadline bounds *waiting* on workers).
    if config.jobs > 1:
        plan = FaultPlan(latency_seconds={0: 0.5}, seed=config.seed)
        with service(fault_injector=plan) as svc:
            results, elapsed = serve(svc, requests, deadline_seconds=0.15)
        if results[0].error is None or results[0].error.stage != "deadline":
            raise AssertionError("deadline scenario did not trip")
        rows.append(_summarize("deadline", results, elapsed))

    # -- hotswap: ≥100 versions republished under concurrent load; every
    # in-flight request must answer, bit-identically (all versions carry
    # the same content), and the route must fully drain afterwards.
    swap_target = 120
    with service() as svc:
        start = time.perf_counter()
        with _Askers(svc, requests, expected=expected) as askers:
            for i in range(swap_target):
                svc.register(CHAOS_TASK, artifact, version=f"chaos-v{i}")
        elapsed = time.perf_counter() - start
        if askers.failures:
            raise AssertionError(
                f"hot-swap storm dropped/corrupted {len(askers.failures)} "
                "in-flight requests"
            )
        if svc.stats.hot_swaps < 100:
            raise AssertionError("hot-swap storm republished fewer than 100 versions")
        deadline = time.monotonic() + 5.0
        while not svc.route_drained(CHAOS_TASK):
            if time.monotonic() > deadline:
                raise AssertionError("retired versions failed to drain")
            time.sleep(0.005)
        rows.append(_summarize("hotswap", askers.results, elapsed))

    # -- hotswap-sharded: the same 120-version storm through the sharded
    # gateway.  Every republish fans out to all shards under each
    # shard's own drain protocol; in-flight answers must stay
    # bit-identical, the shards must converge on the final version, and
    # every retired version must drain on every shard.
    with ServingGateway(
        shards=2,
        jobs=config.jobs,
        backend=config.backend,
        retry_policy=_FAST_RETRY,
    ) as gateway:
        gateway.register(CHAOS_TASK, artifact)
        start = time.perf_counter()
        with _Askers(gateway, requests, expected=expected) as askers:
            for i in range(swap_target):
                gateway.register(CHAOS_TASK, artifact, version=f"chaos-v{i}")
        elapsed = time.perf_counter() - start
        if askers.failures:
            raise AssertionError(
                f"sharded hot-swap storm dropped/corrupted "
                f"{len(askers.failures)} in-flight requests"
            )
        if gateway.stats.hot_swaps < 100:
            raise AssertionError(
                "sharded hot-swap storm republished fewer than 100 versions"
            )
        final = gateway.route_versions(CHAOS_TASK)
        if set(final) != {f"chaos-v{swap_target - 1}"}:
            raise AssertionError(
                f"shards diverged after the swap storm: {final}"
            )
        deadline = time.monotonic() + 5.0
        while not gateway.route_drained(CHAOS_TASK):
            if time.monotonic() > deadline:
                raise AssertionError(
                    "retired versions failed to drain on some shard"
                )
            time.sleep(0.005)
        rows.append(_summarize("hotswap-sharded", askers.results, elapsed))

    # -- live-update scenarios: a generational store behind the service,
    # fed through LiveCorpus while askers run.  Each sub-regime asserts
    # its own invariant; the table reports the combined storm.
    changed_url = dataset.test_pages[-1].url
    documents = [(page_to_html(ex.page), ex.page.url) for ex in dataset.train]
    documents += [(page_to_html(page), page.url) for page in dataset.test_pages]
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "chaos.rpw")
        with CorpusStoreWriter(store_path) as writer:
            from ..serving.ingest import ingest_page

            for html, url in documents:
                ingest_page(html, url, store_writer=writer)

        with service(store=store_path) as svc:
            live = LiveCorpus(svc)
            live.track(
                CHAOS_TASK, tool.session,
                unlabeled=list(dataset.test_pages),
                ensemble_size=config.ensemble_size, seed=config.seed,
            )

            # (a) feed + warm refit + hot-swap, askers in flight: zero
            # drops; the swapped program answers like a fresh fit.
            changed = generate_page(task.domain, seed=9000 + config.seed)
            start = time.perf_counter()
            with _Askers(svc, requests) as askers:
                report = live.feed(changed.html, changed_url)
            elapsed = time.perf_counter() - start
            if askers.failures:
                raise AssertionError("live feed dropped in-flight requests")
            if not report.swaps or not report.swaps[0].swapped:
                raise AssertionError(f"live feed did not hot-swap: {report.swaps}")
            fresh_unlabeled = [
                changed.page if page.url == changed_url else page
                for page in dataset.test_pages
            ]
            fresh = WebQA(
                ensemble_size=config.ensemble_size, seed=config.seed
            ).fit(
                task.question, task.keywords, list(dataset.train),
                fresh_unlabeled, dataset.models,
            )
            updated_requests = [
                ServingRequest(
                    route=CHAOS_TASK, html=page_to_html(page), url=page.url
                )
                for page in fresh_unlabeled
            ]
            served = svc.ask_many(updated_requests)
            if served != [fresh.predict(page) for page in fresh_unlabeled]:
                raise AssertionError(
                    "post-feed answers diverged from a fresh rebuild + fit"
                )
            rows.append(_summarize("live-feed", askers.results, elapsed))

            # (b) refit fault → rollback: the route keeps its version and
            # every request keeps answering.
            version_before = svc.route_version(CHAOS_TASK)
            live._injector = FaultInjector(
                FaultPlan(refit_faults={live._feeds: ALWAYS}, seed=config.seed)
            )
            second = generate_page(task.domain, seed=9100 + config.seed)
            start = time.perf_counter()
            with _Askers(svc, updated_requests) as askers:
                report = live.feed(second.html, changed_url)
            elapsed = time.perf_counter() - start
            if askers.failures:
                raise AssertionError("rollback scenario dropped requests")
            if any(swap.swapped for swap in report.swaps) or not any(
                swap.reason == "refit-error" for swap in report.swaps
            ):
                raise AssertionError(f"refit fault did not roll back: {report.swaps}")
            if svc.route_version(CHAOS_TASK) != version_before:
                raise AssertionError("rollback changed the serving version")
            if svc.stats.rollbacks < 1:
                raise AssertionError("rollback not counted")
            rows.append(_summarize("live-rollback", askers.results, elapsed))

            # (c) torn segment and mid-publish crash: the injected fault
            # surfaces, the store stays at its generation, serving and a
            # later clean feed are unaffected; GC collects the orphan.
            generation = svc.store.generation
            for field_name in ("torn_segments", "publish_crashes"):
                live._injector = FaultInjector(
                    FaultPlan(**{field_name: frozenset({live._feeds})},
                              seed=config.seed)
                )
                third = generate_page(task.domain, seed=9200 + config.seed)
                try:
                    live.feed(third.html, changed_url)
                    raise AssertionError(f"{field_name} fault did not surface")
                except IngestError as error:
                    if not error.injected:
                        raise
                svc.store.reload()
                if svc.store.generation != generation:
                    raise AssertionError(
                        f"{field_name}: store generation moved under a crash"
                    )
            collect_garbage(store_path)
            live._injector = None
            start = time.perf_counter()
            with _Askers(svc, updated_requests) as askers:
                report = live.feed(
                    generate_page(task.domain, seed=9300 + config.seed).html,
                    changed_url,
                )
            elapsed = time.perf_counter() - start
            if askers.failures or not report.swaps or not report.swaps[0].swapped:
                raise AssertionError("post-crash feed did not recover cleanly")
            rows.append(_summarize("live-crash", askers.results, elapsed))

    return rows


def render(rows: list[ChaosRow]) -> str:
    """The serve-chaos table, experiments-runner style."""
    lines = [
        "Serve-chaos: fault-tolerant serving under deterministic fault plans",
        "",
        f"{'scenario':<12} {'req':>4} {'ok':>4} {'fail':>5} {'shed':>5} "
        f"{'ddl':>4} {'degr':>5} {'retry':>6} {'pages/s':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.scenario:<12} {row.requests:>4} {row.ok:>4} "
            f"{row.failed - row.rejected - row.deadline:>5} {row.rejected:>5} "
            f"{row.deadline:>4} {row.degraded:>5} {row.retries:>6} "
            f"{row.pages_per_s:>9.1f}"
        )
    lines.append("")
    lines.append(
        "fail = terminal stage failures; shed = admission/circuit "
        "rejections; ddl = deadline misses; degr = degraded answers "
        "(bounded parse or interpreter fallback)."
    )
    return "\n".join(lines)


def run_and_render(config: ExperimentConfig) -> str:
    return render(run(config))
