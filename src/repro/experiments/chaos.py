"""Serve-chaos experiment: the fault-tolerant serving path, measured.

Every scenario drives the *same* exported artifact through a fresh
:class:`~repro.serving.QAService` under a different deterministic
failure regime (``repro.serving.faults``), and the table reports what
the failure model promises: failures stay structured and isolated,
transient faults are retried to success, hostile pages degrade instead
of crashing, overload is shed, and throughput under chaos stays in the
same decade as the clean baseline.

Invariants are asserted, not eyeballed: a scenario whose outcome
deviates from its plan (an un-planned failure, a clean request that
errored, answers diverging from the fitted tool) aborts the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.webqa import WebQA
from ..dataset.tasks import TASKS_BY_ID
from ..serving.faults import ALWAYS, FaultPlan, adversarial_corpus
from ..serving.service import QAService, RetryPolicy, ServingRequest
from ..webtree.html_out import page_to_html
from .common import ExperimentConfig, dataset_for

#: The one serving task the chaos table exercises (routes are
#: orthogonal to the failure machinery; one is enough).
CHAOS_TASK = "fac_t1"

#: Backoff tuned for a table run: deterministic, but near-instant.
_FAST_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.001,
                          max_backoff_seconds=0.002)


@dataclass(frozen=True)
class ChaosRow:
    """Outcome counters for one chaos scenario."""

    scenario: str
    requests: int
    ok: int
    failed: int
    rejected: int
    deadline: int
    degraded: int
    retries: int
    pages_per_s: float


def _summarize(scenario, results, elapsed) -> ChaosRow:
    ok = sum(1 for r in results if r.ok)
    stages = [r.error.stage for r in results if r.error is not None]
    return ChaosRow(
        scenario=scenario,
        requests=len(results),
        ok=ok,
        failed=len(results) - ok,
        rejected=stages.count("admission"),
        deadline=stages.count("deadline"),
        degraded=sum(1 for r in results if r.degraded),
        retries=sum(r.retries for r in results),
        pages_per_s=len(results) / elapsed if elapsed > 0 else 0.0,
    )


def run(config: ExperimentConfig) -> list[ChaosRow]:
    """All chaos scenarios over one artifact; one :class:`ChaosRow` each."""
    task = TASKS_BY_ID[CHAOS_TASK]
    dataset = dataset_for(task, config)
    tool = WebQA(ensemble_size=config.ensemble_size, seed=config.seed).fit(
        task.question,
        task.keywords,
        list(dataset.train),
        list(dataset.test_pages),
        dataset.models,
    )
    artifact = tool.export_artifact()
    expected = [tool.predict(page) for page in dataset.test_pages]
    requests = [
        ServingRequest(route=CHAOS_TASK, html=page_to_html(page), url=page.url)
        for page in dataset.test_pages
    ]
    n = len(requests)

    def service(**kwargs) -> QAService:
        kwargs.setdefault("jobs", config.jobs)
        kwargs.setdefault("backend", config.backend)
        kwargs.setdefault("retry_policy", _FAST_RETRY)
        svc = QAService(**kwargs)
        svc.register(CHAOS_TASK, artifact)
        return svc

    def serve(svc, reqs, **kwargs):
        start = time.perf_counter()
        results = svc.ask_many(reqs, strict=False, **kwargs)
        return results, time.perf_counter() - start

    rows: list[ChaosRow] = []

    # -- baseline: no faults; must answer exactly like the fitted tool.
    with service() as svc:
        results, elapsed = serve(svc, requests)
    if [r.answer for r in results] != expected:
        raise AssertionError("chaos baseline diverged from fitted tool")
    rows.append(_summarize("baseline", results, elapsed))

    # -- transient: every request faults once on predict, some on ingest;
    # bounded retry must cure all of them.
    plan = FaultPlan(
        ingest_faults={i: 1 for i in range(0, n, 3)},
        predict_faults={i: 1 for i in range(n)},
        seed=config.seed,
    )
    with service(fault_injector=plan) as svc:
        results, elapsed = serve(svc, requests)
    if not all(r.ok for r in results):
        raise AssertionError("transient scenario left unrecovered failures")
    rows.append(_summarize("transient", results, elapsed))

    # -- poisoned: a fifth of the requests fail terminally; the rest of
    # the micro-batch must be untouched.
    poisoned = {i: ALWAYS for i in range(0, n, 5)}
    plan = FaultPlan(predict_faults=poisoned, seed=config.seed)
    with service(fault_injector=plan) as svc:
        results, elapsed = serve(svc, requests)
    for index, result in enumerate(results):
        if (index in poisoned) == result.ok:
            raise AssertionError("poisoned scenario isolation violated")
    rows.append(_summarize("poisoned", results, elapsed))

    # -- crash: injected worker deaths (real pool kills on the process
    # backend, transient predict faults on threads); retry must recover.
    plan = FaultPlan(pool_crashes=frozenset({0, n // 2}), seed=config.seed)
    with service(fault_injector=plan) as svc:
        results, elapsed = serve(svc, requests)
    if not all(r.ok for r in results):
        raise AssertionError("crash scenario left unrecovered failures")
    rows.append(_summarize("crash", results, elapsed))

    # -- adversarial: hostile generated pages mixed into real traffic;
    # everything answers (degraded at worst) under the default limits.
    hostile = [
        ServingRequest(route=CHAOS_TASK, html=html, url=f"adv://{kind}")
        for kind, html in adversarial_corpus(seed=config.seed)
    ]
    with service() as svc:
        results, elapsed = serve(svc, requests + hostile)
    if not all(r.ok for r in results):
        raise AssertionError("adversarial pages crashed the serving path")
    rows.append(_summarize("adversarial", results, elapsed))

    # -- overload: admission bound below the offered load; overflow is
    # shed instantly, admitted requests still answer correctly.
    bound = max(1, n // 2)
    with service(max_inflight=bound) as svc:
        results, elapsed = serve(svc, requests)
    if sum(1 for r in results if r.ok) != bound:
        raise AssertionError("admission bound not enforced")
    rows.append(_summarize("overload", results, elapsed))

    # -- deadline: injected latency against a tight deadline (pool
    # backends only: the deadline bounds *waiting* on workers).
    if config.jobs > 1:
        plan = FaultPlan(latency_seconds={0: 0.5}, seed=config.seed)
        with service(fault_injector=plan) as svc:
            results, elapsed = serve(svc, requests, deadline_seconds=0.15)
        if results[0].error is None or results[0].error.stage != "deadline":
            raise AssertionError("deadline scenario did not trip")
        rows.append(_summarize("deadline", results, elapsed))

    return rows


def render(rows: list[ChaosRow]) -> str:
    """The serve-chaos table, experiments-runner style."""
    lines = [
        "Serve-chaos: fault-tolerant serving under deterministic fault plans",
        "",
        f"{'scenario':<12} {'req':>4} {'ok':>4} {'fail':>5} {'shed':>5} "
        f"{'ddl':>4} {'degr':>5} {'retry':>6} {'pages/s':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.scenario:<12} {row.requests:>4} {row.ok:>4} "
            f"{row.failed - row.rejected - row.deadline:>5} {row.rejected:>5} "
            f"{row.deadline:>4} {row.degraded:>5} {row.retries:>6} "
            f"{row.pages_per_s:>9.1f}"
        )
    lines.append("")
    lines.append(
        "fail = terminal stage failures; shed = admission/circuit "
        "rejections; ddl = deadline misses; degr = degraded answers "
        "(bounded parse or interpreter fallback)."
    )
    return "\n".join(lines)


def run_and_render(config: ExperimentConfig) -> str:
    return render(run(config))
