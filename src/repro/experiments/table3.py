"""Table 3: synthesis-engine ablation — pruning and decomposition.

Paper result: average synthesis time 419 s for full WebQA; the NoPrune
ablation is 3.6× slower and NoDecomp 2.4× slower.  All variants return
the same optimal programs, so only time is reported.

Our reproduction measures the same three synthesizer variants on a
representative task slice.  Because the NoPrune search is exponentially
larger, this experiment runs with a deliberately trimmed production pool
(fewer thresholds/labels) so the unpruned variant terminates; the
*relative* speedups are what the table is about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..dsl.productions import ProductionConfig
from ..metrics.scores import mean
from ..synthesis.config import SynthesisConfig, no_decomp, no_prune
from ..synthesis.top import synthesize
from .common import ExperimentConfig, clear_process_caches, dataset_for
from .report import format_table

#: One task per domain keeps the ablation representative yet fast.
DEFAULT_TASK_IDS = ("fac_t1", "conf_t2", "class_t2", "clinic_t1")


def ablation_synthesis_config() -> SynthesisConfig:
    """Search bounds where pruning/decomposition have room to matter.

    Single-branch programs over the full production pool with the default
    depths: large enough that the unpruned and undecomposed searches do
    real extra work, small enough that they still terminate.
    """
    return SynthesisConfig(
        productions=ProductionConfig(),
        guard_depth=3,
        extractor_depth=4,
        max_branches=1,
    )


@dataclass(frozen=True)
class AblationRow:
    """One Table 3 row: a variant's mean time and speedup of full WebQA."""

    technique: str
    avg_seconds: float
    speedup_of_webqa: float  # >1 means WebQA is this many times faster


def run(
    config: ExperimentConfig | None = None,
    task_ids: tuple[str, ...] = DEFAULT_TASK_IDS,
    synthesis_config: SynthesisConfig | None = None,
) -> list[AblationRow]:
    from ..dataset.tasks import TASKS_BY_ID

    config = config or ExperimentConfig()
    base = synthesis_config or ablation_synthesis_config()
    variants = {
        "WebQA": base,
        "WebQA-NoPrune": no_prune(base),
        "WebQA-NoDecomp": no_decomp(base),
    }
    times: dict[str, list[float]] = {name: [] for name in variants}
    f1s: dict[str, list[float]] = {name: [] for name in variants}
    for task_id in task_ids:
        for name, synth_config in variants.items():
            # Rebuild the (seeded, deterministic) dataset per variant.
            # The corpus pages themselves are lru-cached, but each
            # rebuild constructs a fresh NlpModels bundle, and the
            # page-scoped eval caches key on the models' identity — so
            # each variant is timed cold instead of riding the memo
            # tables the previous variant populated.  The process-wide
            # pure-function caches (NER spans, token-F1, segments) are
            # cleared explicitly for the same reason.
            dataset = dataset_for(TASKS_BY_ID[task_id], config)
            clear_process_caches()
            start = time.perf_counter()
            result = synthesize(
                list(dataset.train),
                dataset.task.question,
                dataset.task.keywords,
                dataset.models,
                config=synth_config,
            )
            times[name].append(time.perf_counter() - start)
            f1s[name].append(result.f1)
    # Sanity property from the paper: all variants find the same optimum.
    for i in range(len(task_ids)):
        values = {round(f1s[name][i], 6) for name in variants}
        assert len(values) == 1, f"ablation variants disagree on task {task_ids[i]}"
    webqa_time = mean(times["WebQA"])
    rows = [AblationRow("WebQA", webqa_time, 1.0)]
    for name in ("WebQA-NoPrune", "WebQA-NoDecomp"):
        avg = mean(times[name])
        rows.append(AblationRow(name, avg, avg / webqa_time if webqa_time else 0.0))
    return rows


def render(rows: list[AblationRow]) -> str:
    table_rows = [
        [
            row.technique,
            f"{row.avg_seconds:.2f}",
            "-" if row.technique == "WebQA" else f"{row.speedup_of_webqa:.1f}",
        ]
        for row in rows
    ]
    return format_table(
        ["Technique", "Avg time (s)", "Avg speedup"],
        table_rows,
        title="Table 3: ablation study of the synthesis engine",
    )


def run_and_render(config: ExperimentConfig | None = None) -> str:
    return render(run(config))
