"""Plain-text table rendering for experiment outputs.

The harness prints the same rows/series the paper reports; these helpers
keep that formatting in one place.
"""

from __future__ import annotations

from ..metrics.scores import Score


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Fixed-width table with a separator under the header row."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def prf_cells(score: Score) -> list[str]:
    return [f"{score.precision:.2f}", f"{score.recall:.2f}", f"{score.f1:.2f}"]


def format_series(
    x_label: str, xs: list, series: dict[str, list[float]], title: str = ""
) -> str:
    """A figure rendered as a table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [f"{series[name][i]:.3f}" for name in series])
    return format_table(headers, rows, title=title)
