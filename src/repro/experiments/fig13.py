"""Figure 13: input-modality ablation — question vs keywords vs both.

Paper result (Appendix C.1): full WebQA beats both WebQA-NL (question
only) and WebQA-KW (keywords only) on every domain; the combination of
modalities is what makes the system accurate.
"""

from __future__ import annotations

from functools import partial

from ..core.ablations import WebQAKwOnly, WebQANlOnly
from ..core.results import TaskResult, summarize_by_domain
from ..core.webqa import WebQA
from ..dataset.tasks import DOMAINS, tasks_for_domain
from .common import ExperimentConfig, ToolFactory, run_comparison
from .report import format_series

VARIANT_ORDER = ("WebQA-NL", "WebQA-KW", "WebQA")


def tool_factories(config: ExperimentConfig) -> dict[str, ToolFactory]:
    # partial, not lambda: factories must survive pickling into process
    # pool workers (see repro.runtime).
    return {
        "WebQA-NL": partial(
            WebQANlOnly, ensemble_size=config.ensemble_size, seed=config.seed
        ),
        "WebQA-KW": partial(
            WebQAKwOnly, ensemble_size=config.ensemble_size, seed=config.seed
        ),
        "WebQA": partial(WebQA, ensemble_size=config.ensemble_size, seed=config.seed),
    }


def run(
    config: ExperimentConfig | None = None,
    domains: tuple[str, ...] = DOMAINS,
) -> list[TaskResult]:
    config = config or ExperimentConfig()
    results: list[TaskResult] = []
    for domain in domains:
        results.extend(
            run_comparison(tool_factories(config), config, tasks_for_domain(domain))
        )
    return results


def summarize(results: list[TaskResult]) -> dict[str, list[float]]:
    """Per-variant series of average F1 across domains (Figure 13 bars)."""
    summaries = {(s.domain, s.tool): s for s in summarize_by_domain(results)}
    domains = [d for d in DOMAINS if any(k[0] == d for k in summaries)]
    return {
        variant: [
            summaries[(domain, variant)].score.f1
            if (domain, variant) in summaries
            else 0.0
            for domain in domains
        ]
        for variant in VARIANT_ORDER
    }


def render(results: list[TaskResult]) -> str:
    series = summarize(results)
    domains = [
        d for d in DOMAINS if any(r.domain == d for r in results)
    ]
    return format_series(
        "Domain", [d.capitalize() for d in domains], series,
        title="Figure 13: comparison between WebQA and its modality variants (avg F1)",
    )


def run_and_render(config: ExperimentConfig | None = None) -> str:
    return render(run(config))
