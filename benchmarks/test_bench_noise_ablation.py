"""Extension benchmark: robustness of WebQA to neural-module error.

Shape target: clean models score best, mild noise (5-10% predicate
flips) costs little, heavy noise costs more — decay, not collapse.
"""

from repro.experiments import noise

from conftest import BENCH_CONFIG

RATES = (0.0, 0.1, 0.4)
TASKS = ("clinic_t1",)


def test_bench_noise_ablation(benchmark):
    series = benchmark.pedantic(
        lambda: noise.run(BENCH_CONFIG, task_ids=TASKS, error_rates=RATES),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(noise.render(series, RATES))

    for f1s in series.values():
        clean, mild, heavy = f1s
        assert clean > 0.5
        # Mild noise: graceful degradation (allow small improvements from
        # lucky flips at bench scale).
        assert mild >= clean - 0.35
        # Heavy noise must not *beat* the clean system.
        assert heavy <= clean + 0.05
