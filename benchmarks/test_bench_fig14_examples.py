"""Benchmark E6 — Figure 14: F1 vs number of labeled examples.

Shape target: per-task F1 series over example counts exist for all six
conference tasks; F1 with the most labels is, for most tasks, at least
F1 with a single label (sensitivity is task-dependent, per Appendix C.2).
"""

from repro.experiments import fig14

from conftest import BENCH_CONFIG

COUNTS = (1, 3)


def test_bench_fig14_examples(benchmark):
    series = benchmark.pedantic(
        lambda: fig14.run(BENCH_CONFIG, example_counts=COUNTS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(fig14.render(series, COUNTS))

    assert len(series) == 6
    non_decreasing = sum(1 for f1s in series.values() if f1s[-1] >= f1s[0] - 0.05)
    # More labels help (or do not hurt) for most tasks.
    assert non_decreasing >= 4
