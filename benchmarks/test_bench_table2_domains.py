"""Benchmark E2a — Table 2: per-domain P/R/F1 for all four tools.

Shape assertions mirror the paper: WebQA has the best F1 in every domain,
and the wrapper-induction baseline (HYB) trails WebQA everywhere.
"""

from repro.core.results import summarize_by_domain
from repro.dataset.tasks import DOMAINS
from repro.experiments import table2


def test_bench_table2_domains(benchmark, comparison_results):
    summaries = benchmark(lambda: summarize_by_domain(comparison_results))
    print()
    print(table2.render(comparison_results))

    by_key = {(s.domain, s.tool): s.score for s in summaries}
    for domain in DOMAINS:
        webqa = by_key[(domain, "WebQA")]
        for baseline in ("BERTQA", "HYB", "EntExtract"):
            assert webqa.f1 >= by_key[(domain, baseline)].f1, (
                f"WebQA must lead F1 in the {domain} domain (vs {baseline})"
            )
        # The paper's per-domain WebQA band is roughly 0.6-0.8; our corpus
        # is synthetic, so assert a generous floor rather than the exact
        # constants.
        assert webqa.f1 > 0.5, f"WebQA F1 collapsed in {domain}"
