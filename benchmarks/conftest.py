"""Shared fixtures for the benchmark suite.

The paper-artifact benchmarks (one per table/figure) run the experiment
harness at a reduced corpus scale so the whole suite finishes in minutes;
``python -m repro.experiments.runner --paper-scale`` regenerates the
full-scale numbers.  The expensive 25-task × 4-tool comparison sweep is
shared by the Figure 12 / Table 2 / Table 6 benchmarks via a session
fixture.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, fig12

#: Reduced scale used by all artifact benchmarks.
BENCH_CONFIG = ExperimentConfig(n_pages=8, n_train=2, ensemble_size=30)


@pytest.fixture(scope="session")
def comparison_results():
    """The shared fig12/table2/table6 sweep (all 25 tasks, 4 tools)."""
    return fig12.run(BENCH_CONFIG)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG
