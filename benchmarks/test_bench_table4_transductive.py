"""Benchmark E4 — Table 4: transductive selection vs Random / Shortest.

Shape target (paper: ~6% mean-F1 improvement, ~1550× variance
reduction): transductive selection must not lose mean F1 and must cut
variance by a large factor.
"""

from repro.experiments import table4

from conftest import BENCH_CONFIG

TASK_IDS = ("fac_t1", "conf_t2", "clinic_t1")
RUNS = 8


def test_bench_table4_transductive(benchmark):
    rows = benchmark.pedantic(
        lambda: table4.run(BENCH_CONFIG, task_ids=TASK_IDS, runs=RUNS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(table4.render(rows))

    by_name = {row.technique: row for row in rows}
    for name in ("Random", "Shortest"):
        # Transductive selection never *loses* much mean F1.
        assert by_name[name].f1_improvement_pct > -2.0
    # ... and dramatically stabilizes the choice across seeds.  (At bench
    # scale the Shortest baseline can itself be deterministic — a unique
    # smallest program — so the strong claim is asserted against Random.)
    assert by_name["Random"].variance_reduction > 5.0
    assert by_name["Shortest"].variance_reduction >= 0.0
