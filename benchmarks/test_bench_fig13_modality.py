"""Benchmark E5 — Figure 13: input-modality ablation (NL / KW / both).

Shape target: full WebQA's per-domain F1 is at least that of each
single-modality variant (small tolerance for bench-scale noise).
"""

from repro.experiments import fig13

from conftest import BENCH_CONFIG

DOMAINS = ("faculty", "clinic")


def test_bench_fig13_modality(benchmark):
    results = benchmark.pedantic(
        lambda: fig13.run(BENCH_CONFIG, domains=DOMAINS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(fig13.render(results))

    series = fig13.summarize(results)
    for i, _ in enumerate(DOMAINS):
        assert series["WebQA"][i] >= series["WebQA-NL"][i] - 0.1
        assert series["WebQA"][i] >= series["WebQA-KW"][i] - 0.1
    # Dropping both-modality synergy hurts somewhere: at least one domain
    # shows a real gap for the question-only variant.
    gaps = [series["WebQA"][i] - series["WebQA-NL"][i] for i in range(len(DOMAINS))]
    assert max(gaps) > 0.0
