"""Synthesis-engine microbenchmarks: the hot paths behind Table 3.

These are classic pytest-benchmark timings (many rounds) of the
individual components: HTML parsing, tree building, the three neural
primitives, DSL evaluation, guard enumeration and extractor synthesis.

DSL evaluation and synthesis are measured in both engine modes — the
default ``indexed`` engine and the ``reference`` interpreter it
replaced — so the speedup is tracked directly in this suite (and in the
BENCH_synthesis_micro.json artifact written by ``benchmarks/persist.py``).
"""

from dataclasses import replace

from repro.dataset import generate_page
from repro.dsl import EvalContext, ast
from repro.html import parse_html
from repro.nlp import NlpModels
from repro.synthesis import (
    LabeledExample,
    SynthesisSession,
    TaskContexts,
    synthesize,
    synthesize_branch,
)
from repro.synthesis.config import SynthesisConfig
from repro.dsl.productions import ProductionConfig, fine_thresholds
from repro.webtree import build_tree

MODELS = NlpModels()
QUESTION = "Who are the current PhD students?"
KEYWORDS = ("Current Students", "PhD")

PAGE_HTML = generate_page("faculty", 11).html
PAGE = generate_page("faculty", 11).page
GOLD = generate_page("faculty", 11).gold["fac_t1"]
# Seed 16 chosen so the two-branch partitions stay feasible against the
# seed-11 page: the warm-refit benchmark then actually exercises block
# reuse (blocks_reused > 0), not just cache misses.
PAGE2 = generate_page("faculty", 16).page
GOLD2 = generate_page("faculty", 16).gold["fac_t1"]

SMALL = SynthesisConfig(
    productions=ProductionConfig(
        keyword_thresholds=(0.7,),
        entity_labels=("PERSON", "ORG", "DATE"),
        use_negation=False,
        use_subtree_text=False,
    ),
    guard_depth=3,
    extractor_depth=3,
    max_branches=1,
)
SMALL_REFERENCE = replace(SMALL, engine="reference")


def test_bench_parse_html(benchmark):
    doc = benchmark(parse_html, PAGE_HTML)
    assert doc.body is not None


# -- tokenizer fast path: vectorized scanner vs the stdlib event parser -------
#
# Both variants parse the same spread of dataset pages (all four domains,
# several seeds each) so the ratio reflects corpus-shaped markup, not one
# lucky page.  The vectorized median is guarded in CI and its win over
# the stdlib path is tracked as a speedup pair (≥2x by construction of
# the PR that introduced it).

_PARSE_CORPUS = [
    generate_page(domain, seed).html
    for domain in ("faculty", "conference", "class", "clinic")
    for seed in range(3, 27, 2)
]


def test_bench_parse_html_stdlib(benchmark):
    def run():
        return [
            parse_html(html, tokenizer="stdlib") for html in _PARSE_CORPUS
        ]

    docs = benchmark(run)
    assert len(docs) == len(_PARSE_CORPUS)


def test_bench_parse_html_vectorized(benchmark):
    def run():
        return [parse_html(html) for html in _PARSE_CORPUS]

    docs = benchmark(run)
    assert len(docs) == len(_PARSE_CORPUS)
    # The fast scanner must actually take its fast path on dataset pages;
    # a silent wholesale fallback would quietly measure stdlib twice.
    assert not any(doc.fast_fallback for doc in docs)


def test_bench_build_tree(benchmark):
    doc = parse_html(PAGE_HTML)
    page = benchmark(build_tree, doc)
    assert page.size() > 3


def test_bench_keyword_similarity(benchmark):
    matcher = NlpModels().keywords  # fresh: no memoized results

    def score():
        return matcher.similarity("Professional Service and Activities", "PC")

    value = benchmark(score)
    assert 0.0 <= value <= 1.0


# -- cold keyword plane: batched scoring vs the scalar loop -------------------
#
# The workload the page-level TextPlane actually runs, at serving scale:
# score every node text of a batch of pages against the task keywords,
# starting from a matcher with no phrase/tokenization caches (the
# module-level word-vector cache stays warm in both variants, exactly
# like test_bench_keyword_similarity).

_PLANE_TEXTS = [
    text
    for seed in range(3, 99, 6)
    for text in generate_page("faculty", seed).page.index().texts
]


def test_bench_keyword_similarity_scalar_cold(benchmark):
    from repro.nlp import KeywordMatcher

    def run():
        matcher = KeywordMatcher()  # cold phrase/word-token caches
        return [matcher.best_similarity(text, KEYWORDS) for text in _PLANE_TEXTS]

    scores = benchmark(run)
    assert len(scores) == len(_PLANE_TEXTS)


def test_bench_keyword_similarity_batch_cold(benchmark):
    from repro.nlp import KeywordMatcher

    def run():
        matcher = KeywordMatcher()  # cold phrase/word-token caches
        return matcher.similarity_batch(_PLANE_TEXTS, KEYWORDS)

    scores = benchmark(run)
    assert len(scores) == len(_PLANE_TEXTS)


def test_bench_ner_extraction(benchmark):
    from repro.nlp.ner import extract_entities

    text = PAGE.root.subtree_text()[:500]
    spans = benchmark(extract_entities, text)
    assert isinstance(spans, list)


def test_bench_qa_answer(benchmark):
    model = NlpModels().qa
    passage = PAGE.root.subtree_text()[:800]

    def answer():
        model._cache.clear()
        return model.answer(QUESTION, passage)

    benchmark(answer)


_LOCATOR = ast.GetDescendants(
    ast.GetRoot(), ast.MatchText(ast.MatchKeyword(0.7), False)
)


def test_bench_eval_locator(benchmark):
    # Warm path: page-scoped caches persist across contexts, so this
    # measures the steady-state cost synthesis actually pays when it
    # re-evaluates a locator over an already-analyzed page.
    def run():
        ctx = EvalContext(PAGE, QUESTION, KEYWORDS, MODELS)
        return ctx.eval_locator(_LOCATOR)

    benchmark(run)


def test_bench_eval_locator_cold(benchmark):
    # Cold path: the index (and every page-scoped memo) is rebuilt each
    # round, isolating first-evaluation cost from cache-hit cost.  The
    # module-level MODELS keeps its internal memos, exactly like the
    # reference benchmark below.
    def run():
        PAGE.invalidate_index()
        ctx = EvalContext(PAGE, QUESTION, KEYWORDS, MODELS)
        return ctx.eval_locator(_LOCATOR)

    benchmark(run)


def test_bench_eval_locator_reference(benchmark):
    def run():
        ctx = EvalContext(PAGE, QUESTION, KEYWORDS, MODELS, engine="reference")
        return ctx.eval_locator(_LOCATOR)

    benchmark(run)


def test_bench_eval_extractor(benchmark):
    ctx = EvalContext(PAGE, QUESTION, KEYWORDS, MODELS)
    nodes = ctx.eval_locator(ast.get_leaves(ast.GetRoot()))
    extractor = ast.Filter(
        ast.Split(ast.ExtractContent(), ","), ast.HasEntity("PERSON")
    )

    def run():
        fresh = EvalContext(PAGE, QUESTION, KEYWORDS, MODELS)
        return fresh.eval_extractor(extractor, nodes)

    benchmark(run)


def test_bench_branch_synthesis(benchmark):
    def run():
        # Drop the page-scoped caches so every round is a cold synthesis
        # run (cache reuse *within* the run is the engine's own win);
        # MODELS keeps its internal memos, like the reference variants.
        PAGE.invalidate_index()
        contexts = TaskContexts(QUESTION, KEYWORDS, MODELS)
        return synthesize_branch(
            [LabeledExample(PAGE, GOLD)], [], contexts, SMALL
        )

    # 15 rounds, not 5: this median is a CI merge gate, and at rounds=5
    # the distribution was unstable enough (stddev ≈ mean, mean 12.3ms vs
    # median 6.7ms) that one slow outlier round could flip the verdict.
    # The gate itself compares *medians* (benchtool CompareRow), which
    # the extra rounds make robust.
    space = benchmark.pedantic(run, rounds=15, iterations=1, warmup_rounds=1)
    assert space.f1 > 0


def test_bench_branch_synthesis_sequential(benchmark):
    # The per-candidate scalar schedule (frontier=False): the oracle the
    # frontier engine is differentially pinned against, timed so the
    # artifact tracks the frontier win as a median ratio.
    config = replace(SMALL, frontier=False)

    def run():
        PAGE.invalidate_index()
        contexts = TaskContexts(QUESTION, KEYWORDS, MODELS)
        return synthesize_branch(
            [LabeledExample(PAGE, GOLD)], [], contexts, config
        )

    # Rounds match test_bench_branch_synthesis: the two medians form a
    # tracked speedup pair, so they should face the same noise regime.
    space = benchmark.pedantic(run, rounds=15, iterations=1, warmup_rounds=1)
    assert space.f1 > 0


# -- frontier guard sweep: one GenGuards family, fine threshold grid ----------
#
# The workload the classify_guard_frontier kernel exists for: the paper's
# 0.05-step matchKeyword threshold grid makes GenGuards emit a ~25-guard
# family over one locator; the frontier classifies the whole family with
# one locator evaluation and one scoring pass per page.  Page caches are
# dropped per round (cold, like branch synthesis); MODELS keeps its memos.

_SWEEP_PRODUCTIONS = ProductionConfig(
    keyword_thresholds=fine_thresholds(0.05),
    entity_labels=("PERSON", "ORG", "DATE"),
)
_SWEEP_LOCATOR = ast.GetDescendants(ast.GetRoot(), ast.IsLeaf())


def test_bench_frontier_guard_sweep(benchmark):
    from repro.dsl.productions import gen_guards

    family = list(gen_guards(_SWEEP_LOCATOR, _SWEEP_PRODUCTIONS))
    positives = [LabeledExample(PAGE, GOLD)]
    negatives = [LabeledExample(PAGE2, GOLD2)]

    def run():
        PAGE.invalidate_index()
        PAGE2.invalidate_index()
        contexts = TaskContexts(QUESTION, KEYWORDS, MODELS)
        return contexts.classify_guard_frontier(family, positives, negatives)

    # Guarded median: 15 rounds for the same outlier robustness as
    # test_bench_branch_synthesis.
    verdicts = benchmark.pedantic(run, rounds=15, iterations=1, warmup_rounds=1)
    assert len(verdicts) == len(family)


def test_bench_full_synthesis(benchmark):
    # Steady-state: page-scoped caches are deliberately pre-warmed (not
    # left to test ordering), measuring what repeated synthesis over an
    # already-analyzed page costs — the experiments-pipeline hot path.
    # The _cold variant below isolates first-synthesis cost.
    examples = [LabeledExample(PAGE, GOLD)]
    synthesize(examples, QUESTION, KEYWORDS, MODELS, SMALL)

    def run():
        return synthesize(examples, QUESTION, KEYWORDS, MODELS, SMALL)

    # Guarded medians get >= 7 rounds (see test_bench_branch_synthesis);
    # full synthesis is slow enough that 7 keeps the suite affordable
    # while still drowning a single outlier round.
    result = benchmark.pedantic(run, rounds=7, iterations=1, warmup_rounds=0)
    assert result.f1 > 0


def test_bench_full_synthesis_cold(benchmark):
    examples = [LabeledExample(PAGE, GOLD)]

    def run():
        # Cold per round — see test_bench_branch_synthesis.
        PAGE.invalidate_index()
        return synthesize(examples, QUESTION, KEYWORDS, MODELS, SMALL)

    result = benchmark.pedantic(run, rounds=7, iterations=1, warmup_rounds=0)
    assert result.f1 > 0


def test_bench_full_synthesis_reference(benchmark):
    examples = [LabeledExample(PAGE, GOLD)]

    def run():
        return synthesize(examples, QUESTION, KEYWORDS, MODELS, SMALL_REFERENCE)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert result.f1 > 0


# -- incremental sessions: warm refit vs fresh synthesis ---------------------
#
# The interactive loop of the paper: fit on k examples, label one more,
# synthesize again.  A session reuses every branch-synthesis block whose
# (block, negatives) content did not change; the fresh baseline re-solves
# all of them.  Page-scoped eval caches are pre-warmed in every variant,
# so the measured delta is the session layer's own win, not engine memo
# warmup.

REFIT_CONFIG = replace(SMALL, max_branches=2)
BASE_EXAMPLE = LabeledExample(PAGE, GOLD)
NEW_EXAMPLE = LabeledExample(PAGE2, GOLD2)


def _prewarm_refit_pages():
    synthesize([BASE_EXAMPLE, NEW_EXAMPLE], QUESTION, KEYWORDS, MODELS, REFIT_CONFIG)


def test_bench_session_refit_warm(benchmark):
    _prewarm_refit_pages()

    def setup():
        session = SynthesisSession(
            QUESTION, KEYWORDS, MODELS, config=REFIT_CONFIG,
            examples=[BASE_EXAMPLE],
        )
        session.synthesize()
        return (session,), {}

    def run(session):
        session.add_example(NEW_EXAMPLE)
        return session.synthesize()

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert result.f1 > 0
    assert result.stats.blocks_reused > 0


def test_bench_session_resynthesize(benchmark):
    _prewarm_refit_pages()
    session = SynthesisSession(
        QUESTION, KEYWORDS, MODELS, config=REFIT_CONFIG,
        examples=[BASE_EXAMPLE, NEW_EXAMPLE],
    )
    session.synthesize()

    def run():
        return session.synthesize()

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert result.f1 > 0
    assert result.stats.blocks_synthesized == 0


def test_bench_session_refit_fresh(benchmark):
    _prewarm_refit_pages()
    examples = [BASE_EXAMPLE, NEW_EXAMPLE]

    def run():
        return synthesize(examples, QUESTION, KEYWORDS, MODELS, REFIT_CONFIG)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert result.f1 > 0


def test_bench_live_update(benchmark):
    """End-to-end live feed: publish → invalidate → warm refit → hot-swap.

    One unlabeled page alternates between two content variants, so every
    round is a real change (fresh fingerprint) but the labeled examples
    never move — the refit runs in the fully-cached resynthesize regime
    and the measured time is the live-update machinery itself plus
    selection, compared against ``test_bench_session_refit_fresh``.
    """
    from repro.core.webqa import WebQA
    from repro.serving.ingest import ingest_html
    from repro.serving.live import LiveCorpus
    from repro.serving.service import QAService

    _prewarm_refit_pages()
    url = "https://bench/live-update"
    variants = [
        generate_page("faculty", seed=70).html,
        generate_page("faculty", seed=71).html,
    ]
    service = QAService()
    session = SynthesisSession(
        QUESTION, KEYWORDS, MODELS, config=REFIT_CONFIG,
        examples=[BASE_EXAMPLE, NEW_EXAMPLE],
    )
    unlabeled = [ingest_html(variants[0], url=url)]
    tool = WebQA(
        config=REFIT_CONFIG, ensemble_size=8, selection="shortest"
    ).fit_session(session, unlabeled)
    service.register("bench", tool)
    live = LiveCorpus(service)
    live.track(
        "bench", session, unlabeled=unlabeled,
        ensemble_size=8, selection="shortest",
    )
    # Warm both variants through once so neural memos are populated.
    live.feed(variants[1], url)
    live.feed(variants[0], url)
    state = {"i": 0}

    def run():
        state["i"] ^= 1
        return live.feed(variants[state["i"]], url)

    report = benchmark.pedantic(run, rounds=7, iterations=1, warmup_rounds=0)
    assert not report.unchanged
    assert report.swaps and report.swaps[0].swapped
    service.close()


# -- serving: compiled predict / predict_batch --------------------------------
#
# The production-shaped path: one fitted tool answering previously
# unseen pages.  Every round serves *fresh page objects* (deep copies
# made in untimed setup), so per-request work — index build, plane
# scoring, compiled plan execution — is measured cold, while the tool's
# compiled plan and the model bundle's memos stay warm, exactly the
# steady state of a serving process.

_SERVE_PAGES = [generate_page("faculty", seed).page for seed in range(40, 52)]
_SERVE_TOOL = None


def _serving_tool():
    global _SERVE_TOOL
    if _SERVE_TOOL is None:
        from repro.core.webqa import WebQA

        _SERVE_TOOL = WebQA(config=SMALL, selection="shortest").fit(
            QUESTION,
            KEYWORDS,
            [LabeledExample(PAGE, GOLD)],
            _SERVE_PAGES[:2],
            MODELS,
        )
    return _SERVE_TOOL


def _fresh_serve_pages():
    import copy

    return (copy.deepcopy(_SERVE_PAGES),), {}


def test_bench_predict(benchmark):
    tool = _serving_tool()

    def run(pages):
        return [tool.predict(page) for page in pages]

    answers = benchmark.pedantic(
        run, setup=_fresh_serve_pages, rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(answers) == len(_SERVE_PAGES)


def test_bench_predict_batch(benchmark):
    tool = _serving_tool()

    def run(pages):
        return tool.predict_batch(pages, jobs=2)

    answers = benchmark.pedantic(
        run, setup=_fresh_serve_pages, rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(answers) == len(_SERVE_PAGES)
    assert answers == [tool.predict(page) for page in _SERVE_PAGES]


# -- artifact store + QAService: the production serving stack -----------------
#
# artifact_load is the deployment-critical path (a worker process picking
# up a program); serve_cold is the full ingest pipeline on raw HTML with
# an empty page cache; serve_warm_batch is the steady state — warm cache,
# micro-batched dispatch — whose overhead over bare predict_batch (same
# pages, same jobs) is the service tax and must stay under 10%
# (tracked as a median_speedups pair and gated in CI).

_SERVE_HTML = [
    (generate_page("faculty", seed).html, f"https://bench/{seed}")
    for seed in range(40, 52)
]


_SERVE_ARTIFACT_PATH = None


def _serving_artifact_path():
    global _SERVE_ARTIFACT_PATH
    if _SERVE_ARTIFACT_PATH is None:
        import tempfile

        handle, path = tempfile.mkstemp(suffix=".artifact.json")
        import os

        os.close(handle)
        _serving_tool().export_artifact(path)
        _SERVE_ARTIFACT_PATH = path
    return _SERVE_ARTIFACT_PATH


def test_bench_artifact_load(benchmark):
    from repro.core.webqa import WebQA

    path = _serving_artifact_path()

    def run():
        return WebQA.from_artifact(path)

    tool = benchmark(run)
    assert tool.program == _serving_tool().program


def test_bench_serve_cold(benchmark):
    from repro.serving.service import QAService

    artifact = _serving_tool().export_artifact()
    services = []

    def setup():
        # jobs=1: inline dispatch, no worker pool.  The cold pair
        # (serve_cold vs serve_cold_store) isolates the *ingest* path —
        # thread-pool scheduling jitter on shared runners otherwise
        # swamps the medians the speedup gate divides.  The warm-batch
        # benches below keep the jobs=2 pool path covered.
        service = QAService(jobs=1, max_batch=len(_SERVE_HTML))
        service.register("bench", artifact)
        services.append(service)
        return (service,), {}

    def run(service):
        return service.ask_many(
            [("bench", html, url) for html, url in _SERVE_HTML]
        )

    try:
        # 9 rounds to match test_bench_serve_cold_store: this median is
        # the denominator of a speedup gate, and a 3-round median bounces
        # enough run-to-run to blur the ratio.
        answers = benchmark.pedantic(
            run, setup=setup, rounds=9, iterations=1, warmup_rounds=1
        )
    finally:
        for service in services:
            service.close()
    assert len(answers) == len(_SERVE_HTML)


_SERVE_STORE_PATH = None


def _serving_store_path():
    """A columnar corpus store over _SERVE_HTML, built once per session."""
    global _SERVE_STORE_PATH
    if _SERVE_STORE_PATH is None:
        import os
        import tempfile

        from repro.serving.corpus import build_corpus_store

        handle, path = tempfile.mkstemp(suffix=".rpw")
        os.close(handle)
        build_corpus_store(_SERVE_HTML, path)
        _SERVE_STORE_PATH = path
    return _SERVE_STORE_PATH


def test_bench_serve_cold_store(benchmark):
    """test_bench_serve_cold with the page planes on disk.

    Identical regime — fresh service, empty page cache, raw (html, url)
    requests — except every ingest rehydrates its prebuilt index planes
    from the memmapped store instead of parsing.  The serve_cold /
    serve_cold_store median ratio is the store's whole reason to exist
    (≥3x, tracked as a speedup pair); the median itself is guarded in CI.
    """
    from repro.serving.service import QAService

    artifact = _serving_tool().export_artifact()
    store_path = _serving_store_path()
    services = []

    def setup():
        # jobs=1 to mirror test_bench_serve_cold exactly (see there).
        service = QAService(
            jobs=1, max_batch=len(_SERVE_HTML), store=store_path
        )
        service.register("bench", artifact)
        services.append(service)
        return (service,), {}

    def run(service):
        return service.ask_many(
            [("bench", html, url) for html, url in _SERVE_HTML]
        )

    # More rounds than serve_cold: this one is a guarded CI gate and
    # fast enough (no parsing) that extra rounds are cheap.
    try:
        answers = benchmark.pedantic(
            run, setup=setup, rounds=9, iterations=1, warmup_rounds=1
        )
    finally:
        for service in services:
            service.close()
    assert len(answers) == len(_SERVE_HTML)
    # Every request must have come off the store, not the parser.
    last = services[-1]
    assert last.cache.stats.store_hits == len(_SERVE_HTML)
    # Store-backed answers are bit-identical to the parse path's.
    with QAService(jobs=2, max_batch=len(_SERVE_HTML)) as parsed_service:
        parsed_service.register("bench", artifact)
        assert answers == parsed_service.ask_many(
            [("bench", html, url) for html, url in _SERVE_HTML]
        )


def test_bench_serve_warm_batch(benchmark):
    from repro.serving.service import QAService, ServingRequest

    tool = _serving_tool()
    service = QAService(jobs=2, max_batch=len(_SERVE_PAGES))
    service.register("bench", tool.export_artifact())
    # Same fresh-page regime as test_bench_predict_batch (its overhead
    # baseline): pages handed to the service directly, cache warm in the
    # sense that ingest is a no-op — the measured delta is routing,
    # batching and stats bookkeeping.
    def setup():
        (pages,), _ = _fresh_serve_pages()
        return ([ServingRequest(route="bench", page=page) for page in pages],), {}

    def run(requests):
        return service.ask_many(requests)

    # More rounds than the neighbouring 3-round benches: this median is
    # a CI merge gate (check_regression GUARDED), and a 3-sample median
    # of a ~1ms operation is one scheduler hiccup away from a false
    # failure on a shared runner.
    try:
        answers = benchmark.pedantic(
            run, setup=setup, rounds=15, iterations=1, warmup_rounds=2
        )
    finally:
        service.close()
    assert answers == [tool.predict(page) for page in _SERVE_PAGES]


def test_bench_serve_warm_batch_nonstrict(benchmark):
    """The isolation tax: serve_warm_batch with ``strict=False``.

    Same regime as :func:`test_bench_serve_warm_batch`, but through the
    per-request isolation path — structured :class:`ServingResult`
    objects, per-item exception walls, retry accounting — with no faults
    injected.  The ``serve_warm_batch`` / ``_nonstrict`` median ratio is
    tracked as a speedup pair: fault tolerance must not tax the clean
    path (expected ≈1.0x).
    """
    from repro.serving.service import QAService, ServingRequest

    tool = _serving_tool()
    service = QAService(jobs=2, max_batch=len(_SERVE_PAGES))
    service.register("bench", tool.export_artifact())

    def setup():
        (pages,), _ = _fresh_serve_pages()
        return ([ServingRequest(route="bench", page=page) for page in pages],), {}

    def run(requests):
        return service.ask_many(requests, strict=False)

    try:
        results = benchmark.pedantic(
            run, setup=setup, rounds=15, iterations=1, warmup_rounds=2
        )
    finally:
        service.close()
    assert all(result.ok for result in results)
    assert [r.answer for r in results] == [
        tool.predict(page) for page in _SERVE_PAGES
    ]


# One terminally poisoned request inside a healthy batch: seeds 40..55
# give a 16-page micro-batch; index 5 always fails at predict.
_FAULTY_PAGES = [generate_page("faculty", seed).page for seed in range(40, 56)]
_FAULTY_INDEX = 5


def test_bench_serve_faulty_batch(benchmark):
    """Per-request isolation under fire, timed (and gated in CI).

    A 16-page warm batch with one terminally poisoned request served
    non-strict: the poisoned slot must come back as a structured error,
    the other 15 with correct answers, and the whole round must stay in
    the same cost regime as the clean warm batch (isolation, not
    batch-wide retry or abort).
    """
    from repro.serving.faults import ALWAYS, FaultPlan
    from repro.serving.service import QAService, ServingRequest

    tool = _serving_tool()
    service = QAService(
        jobs=2,
        max_batch=len(_FAULTY_PAGES),
        fault_injector=FaultPlan(predict_faults={_FAULTY_INDEX: ALWAYS}),
    )
    service.register("bench", tool.export_artifact())

    def setup():
        import copy

        pages = copy.deepcopy(_FAULTY_PAGES)
        return ([ServingRequest(route="bench", page=page) for page in pages],), {}

    def run(requests):
        return service.ask_many(requests, strict=False)

    try:
        results = benchmark.pedantic(
            run, setup=setup, rounds=15, iterations=1, warmup_rounds=2
        )
    finally:
        service.close()
    for index, result in enumerate(results):
        if index == _FAULTY_INDEX:
            assert result.error is not None
            assert result.error.stage == "predict"
            assert result.error.injected
        else:
            assert result.ok
            assert result.answer == tool.predict(_FAULTY_PAGES[index])


# -- corpus routing: inverted-index top-k vs exhaustive scan ------------------
#
# The corpus-scale question-answering path: one fitted tool, a 2048-page
# store with its memmap inverted index, `ask_corpus` routing the question
# to the top-k candidate pages and answering by consensus.  The routed /
# exhaustive median ratio is the index's whole reason to exist (scoring
# drops from one tokenize+NER pass per store page to a handful of
# posting-list reads); the answers are bit-identical by construction and
# asserted so below.  The routed median is guarded in CI.

_ROUTING_RIG = None
_ROUTING_PAGES_PER_DOMAIN = 512  # x4 domains = 2048 store pages


def _routing_rig():
    """(service, route) over a 2048-page indexed store, built once."""
    global _ROUTING_RIG
    if _ROUTING_RIG is None:
        import os
        import tempfile

        from repro.core.webqa import WebQA
        from repro.dataset.corpus import load_task_dataset
        from repro.dataset.tasks import tasks_for_domain
        from repro.retrieval.index import build_corpus_index
        from repro.serving.corpus import build_dataset_store
        from repro.serving.service import QAService

        handle, path = tempfile.mkstemp(suffix=".rpw")
        os.close(handle)
        build_dataset_store(
            path, pages_per_domain=_ROUTING_PAGES_PER_DOMAIN
        )
        build_corpus_index(path)
        task = tasks_for_domain("faculty")[0]
        dataset = load_task_dataset(
            task, n_pages=4, n_train=2, seed=0, use_label_suggestions=False
        )
        tool = WebQA(ensemble_size=20).fit(
            task.question,
            task.keywords,
            list(dataset.train),
            list(dataset.test_pages),
            dataset.models,
        )
        service = QAService(jobs=1, store=path)
        service.register(task.task_id, tool)
        _ROUTING_RIG = (service, task.task_id)
    return _ROUTING_RIG


def test_bench_route_topk(benchmark):
    """Index-routed `ask_corpus`: score, cut top-16, fan out, consensus."""
    service, route = _routing_rig()

    def run():
        return service.ask_corpus(route, top_k=16)

    answer = benchmark.pedantic(
        run, rounds=9, iterations=1, warmup_rounds=1
    )
    assert answer.ok and answer.routed
    assert len(answer.candidates) == 16
    # The equivalence contract, enforced in the bench itself: the routed
    # answer (payload and provenance) is bit-identical to the exhaustive
    # reference scan's.
    exhaustive = service.ask_corpus(route, top_k=16, exhaustive=True)
    assert answer.answer == exhaustive.answer
    assert answer.fingerprint == exhaustive.fingerprint
    assert answer.url == exhaustive.url
    assert answer.score == exhaustive.score
    assert answer.support == exhaustive.support
    assert answer.candidates == exhaustive.candidates


def test_bench_route_exhaustive(benchmark):
    """The no-index baseline: same query, every store page scanned."""
    service, route = _routing_rig()

    def run():
        return service.ask_corpus(route, top_k=16, exhaustive=True)

    answer = benchmark.pedantic(
        run, rounds=3, iterations=1, warmup_rounds=1
    )
    assert answer.ok and not answer.routed
    assert len(answer.candidates) == 16
