"""Benchmark E2b — Table 6: per-task breakdown for all four tools.

Checks the task-level texture the paper reports, including its own
failure analysis: WebQA wins most tasks but is *not* required to beat
BERTQA on the two QA-flavoured conference tasks (conf_t4 deadlines,
conf_t5 double-blind) — Section 8.1 "Failure analysis for WebQA".
"""

from repro.dataset.tasks import TASKS
from repro.experiments import table6


def test_bench_table6_tasks(benchmark, comparison_results):
    by_key = benchmark(
        lambda: {(r.task_id, r.tool): r.score for r in comparison_results}
    )
    print()
    print(table6.render(comparison_results))

    qa_flavoured = {"conf_t4", "conf_t5"}
    webqa_wins = 0
    for task in TASKS:
        webqa = by_key[(task.task_id, "WebQA")]
        bert = by_key[(task.task_id, "BERTQA")]
        if webqa.f1 >= bert.f1:
            webqa_wins += 1
        elif task.task_id not in qa_flavoured:
            # Allow isolated upsets at bench scale, but not many (checked
            # in aggregate below).
            pass
    assert webqa_wins >= 20, f"WebQA won only {webqa_wins}/25 tasks vs BERTQA"

    # Every task got scored by every tool.
    assert len(by_key) == len(TASKS) * 4
