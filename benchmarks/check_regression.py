"""Benchmark-regression gate for CI.

Compares a freshly measured micro-benchmark artifact (the output of
``benchmarks/persist.py``) against the committed baseline
``BENCH_synthesis_micro.json`` and fails when a guarded benchmark's
median regresses by more than the allowed ratio.  The guarded set,
threshold and comparison logic live in :mod:`repro.benchtool` (shared
with the ``repro bench`` CLI subcommand, which also measures and prints
the full delta table in one step — the CI job uses it).

A fresh artifact tagged ``suite: serving_load`` (the output of
``repro bench serve-load --output``) is routed to the serving SLO gate
in :mod:`repro.serving.loadgen` instead, against the committed
``BENCH_serving.json`` baseline.

Usage::

    python benchmarks/persist.py --output fresh.json
    python benchmarks/check_regression.py fresh.json          # vs committed baseline
    python benchmarks/check_regression.py fresh.json --baseline other.json
    python benchmarks/check_regression.py fresh.json --max-regression 1.5
    python benchmarks/check_regression.py fresh_serving.json  # serving SLO gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_synthesis_micro.json"
DEFAULT_SERVING_BASELINE = REPO_ROOT / "BENCH_serving.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import benchtool  # noqa: E402

#: Re-exported: the guarded set and default threshold are defined once
#: in repro.benchtool.
GUARDED = benchtool.GUARDED
DEFAULT_MAX_REGRESSION = benchtool.DEFAULT_MAX_REGRESSION


def check(
    fresh: dict, baseline: dict, max_regression: float
) -> list[tuple[str, float, float, float]]:
    """Regressions beyond the threshold: (name, base_s, fresh_s, ratio)."""
    failures = []
    rows = benchtool.compare(fresh, baseline)
    # Suite-wide machine-speed estimate: uniform shifts (slower runner,
    # busy host) are normalized out before gating individual medians.
    scale = benchtool.speed_scale(rows)
    print(f"  machine-speed scale: {scale:.2f}x")
    for row in rows:
        if not row.guarded:
            continue
        if row.base_median_s is None:
            print(f"  {row.name}: no committed baseline — skipped")
            continue
        if row.fresh_median_s is None:
            # A guarded benchmark that silently vanished is itself a
            # regression: fail loudly instead of green-lighting.
            failures.append(
                (row.name, row.base_median_s, float("nan"), float("nan"))
            )
            continue
        ratio = row.ratio
        verdict = "FAIL" if row.fails(max_regression, scale) else "ok"
        print(
            f"  {row.name}: baseline {row.base_median_s * 1000:.3f}ms → "
            f"fresh {row.fresh_median_s * 1000:.3f}ms ({ratio:.2f}x) {verdict}"
        )
        if row.fails(max_regression, scale):
            failures.append(
                (row.name, row.base_median_s, row.fresh_median_s, ratio)
            )
    return failures


def check_serving(fresh: dict, baseline: "dict | None") -> int:
    """Apply the serving SLO gate (speedup floor, clean loops, p95)."""
    from repro.serving import loadgen

    print("serving load gate (see repro.serving.loadgen.check_serving):")
    print(loadgen.format_serving(fresh))
    failures = loadgen.check_serving(fresh, baseline)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("serving load gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=Path, help="freshly measured artifact JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed baseline artifact (default: repo "
        "BENCH_synthesis_micro.json, or BENCH_serving.json for a "
        "serving_load artifact)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help=f"maximum allowed fresh/baseline median ratio "
        f"(default {DEFAULT_MAX_REGRESSION})",
    )
    args = parser.parse_args(argv)
    fresh = json.loads(args.fresh.read_text())
    if fresh.get("suite") == "serving_load":
        baseline_path = args.baseline or DEFAULT_SERVING_BASELINE
        baseline = (
            json.loads(baseline_path.read_text())
            if baseline_path.exists()
            else None
        )
        return check_serving(fresh, baseline)
    baseline = json.loads((args.baseline or DEFAULT_BASELINE).read_text())
    print(
        f"benchmark regression gate (threshold {args.max_regression:.2f}x, "
        f"baseline {args.baseline}):"
    )
    failures = check(fresh, baseline, args.max_regression)
    if failures:
        for name, base_median, fresh_median, ratio in failures:
            print(
                f"REGRESSION: {name} median {base_median:.6f}s → "
                f"{fresh_median:.6f}s ({ratio:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
