"""Benchmark-regression gate for CI.

Compares a freshly measured micro-benchmark artifact (the output of
``benchmarks/persist.py``) against the committed baseline
``BENCH_synthesis_micro.json`` and fails when a guarded benchmark's
median regresses by more than the allowed ratio.

Only benchmarks listed in :data:`GUARDED` gate the build: they are the
headline perf invariants of the synthesis engine (branch synthesis, the
cold indexed locator path) and of the serving stack (the QAService warm
batch path).  Other entries drift with machine noise and are tracked,
not gated.  Cross-machine absolute times are noisy, so
the threshold is deliberately loose (25%) and guards *relative
catastrophes* (an accidentally disabled cache, a quadratic loop), not
small scheduling jitter.

Usage::

    python benchmarks/persist.py --output fresh.json
    python benchmarks/check_regression.py fresh.json          # vs committed baseline
    python benchmarks/check_regression.py fresh.json --baseline other.json
    python benchmarks/check_regression.py fresh.json --max-regression 1.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_synthesis_micro.json"

#: Benchmarks whose median gates CI.
GUARDED = (
    "test_bench_branch_synthesis",
    "test_bench_eval_locator_cold",
    # The serving stack's steady state: QAService micro-batched dispatch
    # over an artifact-loaded tool.  Guards the service tax (routing,
    # batching, stats) staying a thin layer over predict_batch.
    "test_bench_serve_warm_batch",
)

#: A guarded median may grow at most this factor over the baseline.
DEFAULT_MAX_REGRESSION = 1.25


def check(
    fresh: dict, baseline: dict, max_regression: float
) -> list[tuple[str, float, float, float]]:
    """Regressions beyond the threshold: (name, base_s, fresh_s, ratio)."""
    failures = []
    fresh_benchmarks = fresh.get("benchmarks", {})
    base_benchmarks = baseline.get("benchmarks", {})
    for name in GUARDED:
        base_entry = base_benchmarks.get(name)
        fresh_entry = fresh_benchmarks.get(name)
        if base_entry is None:
            print(f"  {name}: no committed baseline — skipped")
            continue
        if fresh_entry is None:
            # A guarded benchmark that silently vanished is itself a
            # regression: fail loudly instead of green-lighting.
            failures.append((name, base_entry["median_s"], float("nan"), float("nan")))
            continue
        base_median = base_entry["median_s"]
        fresh_median = fresh_entry["median_s"]
        ratio = fresh_median / base_median if base_median > 0 else float("inf")
        verdict = "FAIL" if ratio > max_regression else "ok"
        print(
            f"  {name}: baseline {base_median * 1000:.3f}ms → "
            f"fresh {fresh_median * 1000:.3f}ms ({ratio:.2f}x) {verdict}"
        )
        if ratio > max_regression:
            failures.append((name, base_median, fresh_median, ratio))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=Path, help="freshly measured artifact JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline artifact (default: repo BENCH_synthesis_micro.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="maximum allowed fresh/baseline median ratio (default 1.25)",
    )
    args = parser.parse_args(argv)
    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    print(
        f"benchmark regression gate (threshold {args.max_regression:.2f}x, "
        f"baseline {args.baseline}):"
    )
    failures = check(fresh, baseline, args.max_regression)
    if failures:
        for name, base_median, fresh_median, ratio in failures:
            print(
                f"REGRESSION: {name} median {base_median:.6f}s → "
                f"{fresh_median:.6f}s ({ratio:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
