"""Persist micro-benchmark medians as a repo-root JSON artifact.

Runs ``benchmarks/test_bench_synthesis_micro.py`` under pytest-benchmark
and distills the results into ``BENCH_synthesis_micro.json`` at the repo
root: one entry per micro-benchmark (median/mean/stddev seconds, round
count) plus derived indexed-vs-reference speedup ratios.  Committing the
artifact tracks the perf trajectory across PRs the same way
EXPERIMENTS-style JSON artifacts track accuracy.

Usage::

    python benchmarks/persist.py            # full run, writes the artifact
    python benchmarks/persist.py --output somewhere.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "test_bench_synthesis_micro.py"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_synthesis_micro.json"

# The generic artifact helpers are shared with repro.experiments.persist
# and repro.core.artifact (see src/repro/persist.py); this script runs
# from the repo root, so put src on the path before importing them.
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.persist import tagged_payload, write_artifact  # noqa: E402

#: (fast, slow) benchmark pairs whose ratio is reported as a speedup.
SPEEDUP_PAIRS = (
    ("test_bench_eval_locator", "test_bench_eval_locator_reference"),
    ("test_bench_eval_locator_cold", "test_bench_eval_locator_reference"),
    ("test_bench_full_synthesis", "test_bench_full_synthesis_reference"),
    ("test_bench_full_synthesis_cold", "test_bench_full_synthesis_reference"),
    # Session reuse: warm refit (add one example to a fitted session) and
    # no-change re-synthesis, both against a fresh full synthesis of the
    # same final example set.
    ("test_bench_session_refit_warm", "test_bench_session_refit_fresh"),
    ("test_bench_session_resynthesize", "test_bench_session_refit_fresh"),
    # Vectorized planes: batched keyword scoring of a whole page vs the
    # per-text scalar loop, both from cold matcher caches.
    (
        "test_bench_keyword_similarity_batch_cold",
        "test_bench_keyword_similarity_scalar_cold",
    ),
    # Serving: thread fan-out vs sequential compiled predict.
    ("test_bench_predict_batch", "test_bench_predict"),
    # Artifact serving: the QAService warm batch path vs bare
    # predict_batch on the same pages — the *service tax* ratio, which
    # must stay within 10% of 1.0 (in practice it lands above 1.0: the
    # service's persistent pool beats predict_batch's per-call pool
    # construction) — and the warm cache vs cold-ingest win.
    ("test_bench_serve_warm_batch", "test_bench_predict_batch"),
    ("test_bench_serve_warm_batch", "test_bench_serve_cold"),
)


def run_benchmarks(raw_json: Path) -> None:
    """Run the micro-benchmark suite, writing pytest-benchmark JSON."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "-q",
        f"--benchmark-json={raw_json}",
    ]
    src = str(REPO_ROOT / "src")
    inherited = os.environ.get("PYTHONPATH")
    env = {
        **os.environ,
        "PYTHONPATH": f"{src}{os.pathsep}{inherited}" if inherited else src,
    }
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed with exit code {result.returncode}")


def summarize(raw: dict) -> dict:
    """Distill pytest-benchmark JSON into the committed artifact shape."""
    timings = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        timings[bench["name"]] = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    speedups = {}
    for fast, slow in SPEEDUP_PAIRS:
        if fast in timings and slow in timings and timings[fast]["median_s"] > 0:
            speedups[f"{slow}/{fast}"] = round(
                timings[slow]["median_s"] / timings[fast]["median_s"], 2
            )
    return tagged_payload(
        "suite",
        "synthesis_micro",
        config={
            key: raw.get("machine_info", {}).get(key)
            for key in ("node", "processor", "python_version")
        },
        timestamp=raw.get("datetime", ""),
        benchmarks=timings,
        median_speedups=speedups,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the summarized artifact",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "raw.json"
        run_benchmarks(raw_json)
        raw = json.loads(raw_json.read_text())
    artifact = summarize(raw)
    write_artifact(str(args.output), artifact, sort_keys=True)
    print(f"wrote {args.output}")
    for name, ratio in artifact["median_speedups"].items():
        print(f"  {name}: {ratio}x")


if __name__ == "__main__":
    main()
