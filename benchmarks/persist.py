"""Persist micro-benchmark medians as a repo-root JSON artifact.

Runs ``benchmarks/test_bench_synthesis_micro.py`` under pytest-benchmark
and distills the results into ``BENCH_synthesis_micro.json`` at the repo
root: one entry per micro-benchmark (median/mean/stddev seconds, round
count) plus derived speedup ratios.  Committing the artifact tracks the
perf trajectory across PRs the same way EXPERIMENTS-style JSON artifacts
track accuracy.

The measurement/summary machinery lives in :mod:`repro.benchtool`
(shared with ``check_regression.py`` and the ``repro bench`` CLI
subcommand); this script is the thin writer kept for muscle memory.

Usage::

    python benchmarks/persist.py            # full run, writes the artifact
    python benchmarks/persist.py --output somewhere.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_synthesis_micro.json"

# This script runs from the repo root; put src on the path before
# importing the shared tooling.
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import benchtool  # noqa: E402

#: Re-exported for compatibility with older tooling imports.
SPEEDUP_PAIRS = benchtool.SPEEDUP_PAIRS
summarize = benchtool.summarize


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the summarized artifact",
    )
    args = parser.parse_args(argv)
    artifact = benchtool.measure(output=args.output, repo_root=REPO_ROOT)
    print(f"wrote {args.output}")
    for name, ratio in artifact["median_speedups"].items():
        print(f"  {name}: {ratio}x")


if __name__ == "__main__":
    main()
