"""Benchmark E3 — Table 3: synthesis-engine ablation.

Measures the full synthesizer against its NoPrune and NoDecomp ablations
on one task per domain.  Shape target (paper: 3.6× / 2.4×): both ablated
variants are materially slower than full WebQA, while all three find the
same optimal F1 (asserted inside :func:`table3.run`).
"""

from repro.experiments import table3

from conftest import BENCH_CONFIG


def test_bench_table3_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: table3.run(BENCH_CONFIG), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(table3.render(rows))

    by_name = {row.technique: row for row in rows}
    assert by_name["WebQA"].avg_seconds > 0
    # Both engineering ideas must buy real speedups (>1.2x here; the
    # paper reports 3.6x and 2.4x at its scale).
    assert by_name["WebQA-NoPrune"].speedup_of_webqa > 1.2
    assert by_name["WebQA-NoDecomp"].speedup_of_webqa > 1.2
