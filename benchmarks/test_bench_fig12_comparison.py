"""Benchmark E1 — Figure 12: WebQA vs BERTQA / HYB / EntExtract.

Regenerates the headline comparison (average P/R/F1 over all 25 tasks)
and asserts the paper's shape: WebQA wins every aggregate metric.
"""

from repro.experiments import fig12

from conftest import BENCH_CONFIG


def test_bench_fig12_comparison(benchmark, comparison_results):
    def summarize():
        return fig12.summarize(comparison_results)

    scores = benchmark(summarize)
    print()
    print(fig12.render(comparison_results))

    webqa = scores["WebQA"]
    for baseline in ("BERTQA", "HYB", "EntExtract"):
        assert webqa.f1 > scores[baseline].f1, f"WebQA must beat {baseline} on F1"
        assert webqa.recall > scores[baseline].recall
    # Figure 12's secondary observation: recall is where BERTQA loses.
    assert webqa.recall - scores["BERTQA"].recall > 0.1


def test_bench_fig12_single_task_fit(benchmark):
    """Wall-clock of one full WebQA fit (synthesis + selection)."""
    from repro.core import WebQA
    from repro.dataset import TASKS_BY_ID
    from repro.experiments import dataset_for

    dataset = dataset_for(TASKS_BY_ID["clinic_t1"], BENCH_CONFIG)

    def fit():
        tool = WebQA(ensemble_size=BENCH_CONFIG.ensemble_size)
        tool.fit(
            dataset.task.question,
            dataset.task.keywords,
            list(dataset.train),
            list(dataset.test_pages),
            dataset.models,
        )
        return tool.report.train_f1

    f1 = benchmark.pedantic(fit, rounds=1, iterations=1, warmup_rounds=0)
    assert f1 > 0.5
