"""Inside the synthesizer: the optimal-program space and why selection matters.

The paper reports that a single task can admit dozens of F1-optimal
programs (85 for the Figure 2 example) whose *test* behaviour varies
wildly — the motivation for transductive selection.  This example makes
that visible: it synthesizes the optimal space for a conference task,
prints several distinct optimal programs, scores each on held-out pages,
and shows where the consensus choice lands.

Run:  python examples/inspect_programs.py
"""

import random

from repro.dataset import TASKS_BY_ID, load_task_dataset
from repro.dsl import pretty_program
from repro.metrics import score_examples
from repro.selection import run_on_pages, select_program
from repro.synthesis import synthesize

TASK = TASKS_BY_ID["conf_t2"]  # program committee members


def main() -> None:
    dataset = load_task_dataset(TASK, n_pages=16, n_train=3)
    result = synthesize(
        list(dataset.train), TASK.question, TASK.keywords, dataset.models
    )
    print(f"Training F1 of the optimal space: {result.f1:.3f}")
    print(f"Distinct optimal programs (behaviour classes): {result.count()}")
    print()

    pages = list(dataset.test_pages)

    def test_f1(program) -> float:
        outputs = run_on_pages(
            program, pages, TASK.question, TASK.keywords, dataset.models
        )
        return score_examples(zip(outputs, dataset.test_gold)).f1

    rng = random.Random(0)
    print("A sample of optimal programs and their held-out F1:")
    seen = set()
    for _ in range(30):
        program = result.sample(rng)
        if program in seen:
            continue
        seen.add(program)
        print(f"  test F1 = {test_f1(program):.3f}   {pretty_program(program)[:110]}")
        if len(seen) >= 6:
            break

    outcome = select_program(result, pages, dataset.models, ensemble_size=300)
    print()
    print("Transductive (consensus) choice:")
    print(f"  test F1 = {test_f1(outcome.program):.3f}")
    print(f"  {pretty_program(outcome.program)}")
    print(f"  chosen among {outcome.distinct_outputs} distinct behaviours "
          f"(ensemble of {outcome.ensemble_size})")


if __name__ == "__main__":
    main()
