"""Building a clinic directory: multiple tasks over one page corpus.

The paper's Clinic domain asks five different questions of the same
websites (doctors, services, treatments, insurances, locations).  This
example fits one WebQA extractor per task on a shared corpus and prints
a small structured directory — the kind of downstream artifact the
extracted data is for.

Run:  python examples/clinic_directory.py
"""

from repro.core import WebQA
from repro.dataset import load_domain_datasets
from repro.metrics import score_examples


def main() -> None:
    datasets = load_domain_datasets("clinic", n_pages=16, n_train=3)

    tools: dict[str, WebQA] = {}
    for dataset in datasets:
        task = dataset.task
        tool = WebQA(ensemble_size=150)
        tool.fit(
            task.question, task.keywords,
            list(dataset.train), list(dataset.test_pages), dataset.models,
        )
        predictions = tool.predict_all(list(dataset.test_pages))
        score = score_examples(zip(predictions, dataset.test_gold))
        print(f"{task.task_id}: {task.description:45s} F1={score.f1:.2f}")
        tools[task.task_id] = tool

    # Assemble the directory for a few unseen clinics.
    reference = datasets[0]
    print("\n=== Clinic directory (first 3 unseen clinics) ===")
    for page in list(reference.test_pages)[:3]:
        print(f"\n{page.root.text}  [{page.url}]")
        for task_id, label in [
            ("clinic_t1", "doctors"),
            ("clinic_t2", "services"),
            ("clinic_t4", "insurance"),
            ("clinic_t5", "locations"),
        ]:
            values = tools[task_id].predict(page)
            shown = "; ".join(values[:4]) if values else "(not found)"
            print(f"  {label:10s} {shown}")


if __name__ == "__main__":
    main()
