"""The paper's Section 2 motivating scenario: building a PC shortlist.

A PC chair wants to know which program committees each researcher has
served on.  We generate a corpus of heterogeneous faculty homepages
(the synthetic stand-in for the paper's scraped pages), label five of
them as suggested by the interactive labeling module, synthesize an
extractor, and run it over the remaining pages.

Run:  python examples/pc_committee_scenario.py
"""

from repro.core import WebQA
from repro.dataset import TASKS_BY_ID, load_task_dataset
from repro.metrics import score_examples

TASK = TASKS_BY_ID["fac_t5"]  # "Extract program committees they have served on"


def main() -> None:
    print(f"Task: {TASK.description}")
    print(f"Question: {TASK.question}")
    print(f"Keywords: {', '.join(TASK.keywords)}")
    print()

    # ~25 heterogeneous faculty homepages; 4 labeled via page clustering.
    dataset = load_task_dataset(TASK, n_pages=25, n_train=4)
    print(f"Labeled pages (chosen by the labeling module): "
          f"{[e.page.url for e in dataset.train]}")

    tool = WebQA(ensemble_size=300)
    tool.fit(
        TASK.question, TASK.keywords,
        list(dataset.train), list(dataset.test_pages), dataset.models,
    )
    print()
    print(tool.explain())
    print()

    predictions = tool.predict_all(list(dataset.test_pages))
    score = score_examples(zip(predictions, dataset.test_gold))
    print(f"Test score over {len(dataset.test_pages)} unseen researchers: "
          f"P={score.precision:.2f} R={score.recall:.2f} F1={score.f1:.2f}")
    print()
    print("Sample extractions:")
    for page, predicted, gold in list(
        zip(dataset.test_pages, predictions, dataset.test_gold)
    )[:4]:
        print(f"  {page.url}")
        print(f"    extracted: {', '.join(predicted) if predicted else '(none)'}")
        print(f"    expected : {', '.join(gold) if gold else '(none)'}")


if __name__ == "__main__":
    main()
