"""Defining a brand-new extraction task on your own HTML.

WebQA is not tied to the paper's 25 tasks: any (question, keywords,
labeled pages) triple defines a task.  Here we invent one — extracting
*office hours* from course pages — write the pages inline, and train an
extractor on two of them.

Run:  python examples/custom_task.py
"""

from repro import LabeledExample, NlpModels, WebQA, page_from_html

COURSE_A = page_from_html(
    """
    <h1>CS 389: Compilers</h1>
    <h2>Staff</h2><p>Instructor: Mary Anderson</p>
    <h2>Office Hours</h2>
    <ul><li>Tuesday 2:00 pm - 3:00 pm</li><li>Friday 10:00 am - 11:00 am</li></ul>
    <h2>Grading</h2><p>Homework: 40%, Exams: 60%</p>
    """,
    url="course-a",
)

COURSE_B = page_from_html(
    """
    <h1>CS 101</h1>
    <h2>When to find us</h2>
    <p><b>Office hours</b></p>
    <p>Monday 9:00 am - 10:00 am</p>
    <p>Thursday 4:00 pm - 5:00 pm</p>
    <h2>Exams</h2><p>Midterm: October 12, 2021</p>
    """,
    url="course-b",
)

COURSE_C = page_from_html(
    """
    <h1>CS 240: Databases</h1>
    <h2>Logistics</h2>
    <p><b>Drop-in hours</b></p>
    <ul><li>Wednesday 1:30 pm - 2:30 pm</li></ul>
    <h2>Textbook</h2><p>Databases: Principles and Practice by Jack Nguyen</p>
    """,
    url="course-c",
)


def main() -> None:
    tool = WebQA(ensemble_size=150)
    tool.fit(
        question="When are the office hours?",
        keywords=("Office Hours", "Drop-in Hours"),
        train=[
            LabeledExample(
                COURSE_A,
                ("Tuesday 2:00 pm - 3:00 pm", "Friday 10:00 am - 11:00 am"),
            ),
            LabeledExample(
                COURSE_B,
                ("Monday 9:00 am - 10:00 am", "Thursday 4:00 pm - 5:00 pm"),
            ),
        ],
        unlabeled=[COURSE_C],
        models=NlpModels(),
    )
    print(tool.explain())
    print()
    print("Office hours on the unseen page (different section name!):")
    print("  ", tool.predict(COURSE_C))


if __name__ == "__main__":
    main()
