"""Quickstart: teach WebQA to extract PhD students from faculty pages.

This is the paper's Figure 1 pipeline end to end on two hand-written
webpages plus one unseen page:

1. parse HTML into the webpage-tree representation (Section 3);
2. synthesize all F1-optimal DSL programs from two labeled pages
   (Section 5);
3. pick the consensus program by transductive learning (Section 6);
4. run it on an unlabeled page with a *different* layout.

Run:  python examples/quickstart.py
"""

from repro import LabeledExample, NlpModels, WebQA, page_from_html
from repro.webtree import render_tree

# --- two labeled faculty pages (layouts intentionally differ) ------------

PAGE_JANE = page_from_html(
    """
    <h1>Jane Doe</h1>
    <p>Professor, Some University | janedoe@university.edu</p>
    <h2>Students</h2>
    <p><b>PhD students</b></p>
    <ul><li>Robert Smith</li><li>Mary Anderson</li></ul>
    <h2>Service</h2>
    <ul><li>PLDI 2021 (PC)</li><li>CAV 2020 (PC)</li></ul>
    """,
    url="jane",
)

PAGE_JOHN = page_from_html(
    """
    <h1>John Doe</h1>
    <h2>Research</h2><p>My research interests are in programming languages.</p>
    <h2>Current Students</h2>
    <ul><li>Sarah Brown</li><li>Wei Zhang</li></ul>
    <h2>Teaching</h2><p>CS 101: Introduction to Computer Science.</p>
    """,
    url="john",
)

# --- an unlabeled page with yet another layout -----------------------------

PAGE_ANN = page_from_html(
    """
    <h1>Ann Lee</h1>
    <h2>News</h2><p>Two papers accepted to PLDI 2021.</p>
    <h2>Advisees</h2><p>Mark Young, Laura Hill</p>
    """,
    url="ann",
)


def main() -> None:
    question = "Who are the current PhD students?"
    keywords = ("Current Students", "PhD", "Advisees")

    print("Webpage tree of Jane's page (compare with Figure 4 of the paper):")
    print(render_tree(PAGE_JANE))
    print()

    tool = WebQA(ensemble_size=200)
    tool.fit(
        question,
        keywords,
        train=[
            LabeledExample(PAGE_JANE, ("Robert Smith", "Mary Anderson")),
            LabeledExample(PAGE_JOHN, ("Sarah Brown", "Wei Zhang")),
        ],
        unlabeled=[PAGE_ANN],
        models=NlpModels(),
    )

    print(tool.explain())
    print()
    print("Extraction from the unseen page (comma layout, no <ul>):")
    print("  ", tool.predict(PAGE_ANN))


if __name__ == "__main__":
    main()
